"""Metrics registry + the collector that derives metrics from events.

The registry half is deliberately boring — named counters, gauges and
histograms, in the Prometheus mould but in-process and allocation-light.
The interesting half is :class:`MetricsCollector`, a telemetry sink that
folds the event stream into the scheduler-level quantities the paper's
systems claims are stated in:

* **rung occupancy** — how many trials have filed a result in each rung,
  over time (the shape of the ASHA ladder, Section 3.2);
* **promotion latency** — how long a trial sits between finishing rung
  ``k-1`` and a worker picking up its rung-``k`` job (the asynchrony win:
  near-zero for ASHA, rung-barrier-sized for synchronous SHA);
* **queue wait** — how long each worker idles between finishing one job
  and starting the next (the utilisation loss stragglers cause);
* **failure rate** — failed jobs over dispatched jobs;
* **per-worker utilisation** — busy time per worker; its mean over workers
  reproduces the scalar ``BackendResult.utilization``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from .events import EventKind, TelemetryEvent

__all__ = [
    "Counter",
    "DEFAULT_SERIES_BOUND",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsCollector",
    "MetricsReport",
]

#: Default cap on a gauge's timestamped history (see :class:`Gauge`).
DEFAULT_SERIES_BOUND = 4096


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount


class Gauge:
    """Last-write-wins value, with an optional timestamped history.

    The history is a bounded ring: at most ``series_bound`` recent
    ``(time, value)`` pairs are retained (oldest dropped first), so
    long-lived processes — a multiplexer scraping gauges every few ticks
    for hours — hold constant memory.  ``series_bound=None`` disables the
    cap for callers that genuinely want the full history.
    """

    __slots__ = ("name", "value", "series", "series_bound")

    def __init__(self, name: str, *, series_bound: int | None = DEFAULT_SERIES_BOUND):
        if series_bound is not None and series_bound < 1:
            raise ValueError(f"gauge {name!r} series_bound must be >= 1, got {series_bound}")
        self.name = name
        self.value = 0.0
        self.series_bound = series_bound
        #: (time, value) pairs, appended by :meth:`set` when a time is given.
        self.series: list[tuple[float, float]] = []

    def set(self, value: float, *, time: float | None = None) -> None:
        self.value = value
        if time is not None:
            series = self.series
            series.append((time, value))
            bound = self.series_bound
            if bound is not None and len(series) > bound:
                del series[: len(series) - bound]


class Histogram:
    """Streaming summary of observed values (count/sum/min/max + samples).

    Telemetry volumes here are small enough (thousands of events) that we
    keep the raw samples, which makes exact percentiles and hand-computed
    test assertions possible; swap for fixed buckets if that ever changes.
    """

    __slots__ = ("name", "samples")

    def __init__(self, name: str):
        self.name = name
        self.samples: list[float] = []

    def observe(self, value: float) -> None:
        self.samples.append(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    def mean(self) -> float:
        return self.total / len(self.samples) if self.samples else math.nan

    def percentile(self, q: float) -> float:
        """Exact q-th percentile (nearest-rank), ``q`` in [0, 100]."""
        if not self.samples:
            return math.nan
        if not 0 <= q <= 100:
            raise ValueError(f"percentile q must be in [0, 100], got {q}")
        ordered = sorted(self.samples)
        rank = min(int(math.ceil(q / 100.0 * len(ordered))), len(ordered)) - 1
        return ordered[max(rank, 0)]

    def summary(self) -> dict[str, float]:
        if not self.samples:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean(),
            "min": min(self.samples),
            "max": max(self.samples),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Get-or-create store of named metrics (one namespace per run)."""

    def __init__(self, *, gauge_series_bound: int | None = DEFAULT_SERIES_BOUND) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._gauge_series_bound = gauge_series_bound

    def counter(self, name: str) -> Counter:
        return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name, series_bound=self._gauge_series_bound)
        return gauge

    def histogram(self, name: str) -> Histogram:
        return self._histograms.setdefault(name, Histogram(name))

    @property
    def counters(self) -> dict[str, Counter]:
        return self._counters

    @property
    def gauges(self) -> dict[str, Gauge]:
        return self._gauges

    @property
    def histograms(self) -> dict[str, Histogram]:
        return self._histograms

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict view of every metric (for serialisation / display)."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {name: h.summary() for name, h in sorted(self._histograms.items())},
        }


@dataclass
class MetricsReport:
    """Frozen end-of-run snapshot attached to ``BackendResult.telemetry``."""

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, dict[str, float]] = field(default_factory=dict)
    #: rung index -> number of trials that filed a result there.
    rung_occupancy: dict[int, int] = field(default_factory=dict)
    #: (time, rung, occupancy-after) triples, in event order.
    rung_occupancy_series: list[tuple[float, int, int]] = field(default_factory=list)
    #: worker id -> busy_time / elapsed.
    worker_utilization: dict[int, float] = field(default_factory=dict)
    #: (time, cluster busy fraction so far) pairs, in event order.
    utilization_series: list[tuple[float, float]] = field(default_factory=list)
    failure_rate: float = 0.0
    elapsed: float = 0.0
    num_workers: int = 0
    #: Re-dispatches granted by a :class:`~repro.backend.faults.RetryPolicy`.
    jobs_retried: float = 0.0
    #: Jobs killed for exceeding their deadline.
    jobs_timed_out: float = 0.0
    #: Trials quarantined after exhausting their retry budget.
    trials_abandoned: float = 0.0
    #: Backend time spent on jobs that ultimately failed (dropped, crashed,
    #: churned or timed out) — the worker-time the failures wasted.
    time_lost_to_failures: float = 0.0

    def mean_utilization(self) -> float:
        """Mean per-worker utilisation == the scalar ``BackendResult.utilization``."""
        if self.num_workers == 0:
            return 0.0
        return sum(self.worker_utilization.values()) / self.num_workers

    def to_markdown(self) -> str:
        """One-call run summary as a markdown table.

        Covers the quantities every post-run question starts with —
        utilisation, idle time, throughput and the fault counters — so a
        report can be dropped straight into a PR description or issue.
        """
        busy = sum(self.worker_utilization.values()) * self.elapsed
        idle = max(self.num_workers * self.elapsed - busy, 0.0)
        rows: list[tuple[str, str]] = [
            ("elapsed", f"{self.elapsed:g}"),
            ("workers", f"{self.num_workers}"),
            ("mean utilisation", f"{self.mean_utilization():.1%}"),
            ("busy worker-time", f"{busy:g}"),
            ("idle worker-time", f"{idle:g}"),
            ("trials started", f"{int(self.counters.get('trials_started', 0))}"),
            ("jobs started", f"{int(self.counters.get('jobs_started', 0))}"),
            ("reports", f"{int(self.counters.get('events.report', 0))}"),
            ("promotions", f"{int(self.counters.get('promotions', 0))}"),
            ("jobs failed", f"{int(self.counters.get('jobs_failed', 0))}"),
            ("jobs timed out", f"{int(self.jobs_timed_out)}"),
            ("jobs retried", f"{int(self.jobs_retried)}"),
            ("trials abandoned", f"{int(self.trials_abandoned)}"),
            ("failure rate", f"{self.failure_rate:.1%}"),
            ("time lost to failures", f"{self.time_lost_to_failures:g}"),
        ]
        width = max(len(label) for label, _ in rows)
        value_width = max(max(len(value) for _, value in rows), len("value"))
        lines = [
            f"| {'metric'.ljust(width)} | {'value'.ljust(value_width)} |",
            f"| {'-' * width} | {'-' * value_width} |",
        ]
        lines.extend(
            f"| {label.ljust(width)} | {value.ljust(value_width)} |"
            for label, value in rows
        )
        return "\n".join(lines)

    def model_hit_rate(self) -> float:
        """Fraction of origin-tagged proposals that came out of a model.

        Derived from the ``proposals.*`` counters a searcher-aware scheduler
        stamps onto ``trial_started`` events (``model_based`` vs
        ``random_fallback``/``grid``).  ``nan`` when no proposal carried an
        origin — e.g. under default random sampling or legacy composites.
        """
        tagged = sum(
            value for name, value in self.counters.items() if name.startswith("proposals.")
        )
        if tagged == 0:
            return math.nan
        return self.counters.get("proposals.model_based", 0.0) / tagged


class MetricsCollector:
    """Telemetry sink folding events into the registry + derived series.

    All bookkeeping is keyed off event payloads only, so the collector can
    be replayed over a recorded stream (e.g. the in-memory sink's events)
    and produce the identical report.
    """

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        # Trials seen per rung (occupancy counts distinct trials, so a
        # re-reported trial does not inflate its rung).
        self._rung_members: dict[int, set[int]] = {}
        self._rung_series: list[tuple[float, int, int]] = []
        # Promotion latency: last report time per trial.
        self._last_report: dict[int, float] = {}
        # Queue wait + utilisation: per-worker bookkeeping.
        self._worker_free_at: dict[int, float] = {}
        self._worker_busy: dict[int, float] = {}
        self._utilization_series: list[tuple[float, float]] = []
        self._elapsed: float | None = None
        self._num_workers: int | None = None

    # ---------------------------------------------------------------- sink

    def write(self, event: TelemetryEvent) -> None:
        reg = self.registry
        reg.counter("events_total").inc()
        reg.counter(f"events.{event.kind.value}").inc()
        handler = self._HANDLERS.get(event.kind)
        if handler is not None:
            handler(self, event)

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    # ------------------------------------------------------------ handlers

    def _on_job_started(self, event: TelemetryEvent) -> None:
        self.registry.counter("jobs_started").inc()
        worker = event.worker_id
        if worker is not None:
            freed = self._worker_free_at.pop(worker, None)
            if freed is not None:
                self.registry.histogram("queue_wait").observe(max(event.time - freed, 0.0))
            # The simulator credits a job's busy time at dispatch (it knows
            # the duration up front); real backends credit at completion.
            credit = event.data.get("busy_credit")
            if credit is not None:
                self._credit_busy(worker, float(credit), event.time)

    def _on_report(self, event: TelemetryEvent) -> None:
        if event.trial_id is not None:
            self._last_report[event.trial_id] = event.time
        if event.rung is not None and event.trial_id is not None:
            members = self._rung_members.setdefault(event.rung, set())
            if event.trial_id not in members:
                members.add(event.trial_id)
                occupancy = len(members)
                self.registry.gauge(f"rung_occupancy.{event.rung}").set(
                    occupancy, time=event.time
                )
                self._rung_series.append((event.time, event.rung, occupancy))
        self._on_job_end(event)

    def _on_job_failed(self, event: TelemetryEvent) -> None:
        self.registry.counter("jobs_failed").inc()
        self._on_job_end(event)

    def _on_job_timeout(self, event: TelemetryEvent) -> None:
        self.registry.counter("jobs_timed_out").inc()
        self._on_job_end(event)

    def _on_job_retried(self, event: TelemetryEvent) -> None:
        self.registry.counter("jobs_retried").inc()

    def _on_trial_abandoned(self, event: TelemetryEvent) -> None:
        self.registry.counter("trials_abandoned").inc()

    def _on_job_end(self, event: TelemetryEvent) -> None:
        lost = event.data.get("lost")
        if lost is not None:
            self.registry.counter("time_lost_to_failures").inc(max(float(lost), 0.0))
        worker = event.worker_id
        if worker is None:
            return
        self._worker_free_at[worker] = event.time
        busy = event.data.get("busy")
        if busy is not None:
            self._credit_busy(worker, float(busy), event.time)
        # The simulator credits busy time optimistically at dispatch; when a
        # job is killed mid-flight it emits the (negative) difference between
        # the time actually worked and the credit taken up front.
        correction = event.data.get("busy_correction")
        if correction is not None:
            self._credit_busy(worker, float(correction), event.time)

    def _on_promotion(self, event: TelemetryEvent) -> None:
        self.registry.counter("promotions").inc()
        if event.trial_id is not None:
            last = self._last_report.get(event.trial_id)
            if last is not None:
                latency = max(event.time - last, 0.0)
                self.registry.histogram("promotion_latency").observe(latency)

    def _on_rung_completed(self, event: TelemetryEvent) -> None:
        self.registry.counter("rung_completions").inc()

    def _on_trial_started(self, event: TelemetryEvent) -> None:
        self.registry.counter("trials_started").inc()
        origin = event.data.get("origin")
        if origin is not None:
            self.registry.counter(f"proposals.{origin}").inc()

    def _on_checkpoint_restored(self, event: TelemetryEvent) -> None:
        self.registry.counter("checkpoint_restores").inc()

    def _on_worker_idle(self, event: TelemetryEvent) -> None:
        self.registry.counter("worker_idle_polls").inc()

    _HANDLERS = {
        EventKind.JOB_STARTED: _on_job_started,
        EventKind.REPORT: _on_report,
        EventKind.JOB_FAILED: _on_job_failed,
        EventKind.JOB_TIMEOUT: _on_job_timeout,
        EventKind.JOB_RETRIED: _on_job_retried,
        EventKind.TRIAL_ABANDONED: _on_trial_abandoned,
        EventKind.PROMOTION: _on_promotion,
        EventKind.RUNG_COMPLETED: _on_rung_completed,
        EventKind.TRIAL_STARTED: _on_trial_started,
        EventKind.CHECKPOINT_RESTORED: _on_checkpoint_restored,
        EventKind.WORKER_IDLE: _on_worker_idle,
    }

    def _credit_busy(self, worker: int, amount: float, time: float) -> None:
        self._worker_busy[worker] = self._worker_busy.get(worker, 0.0) + amount
        total = sum(self._worker_busy.values())
        self._utilization_series.append((time, total))

    # ------------------------------------------------------------- results

    def finalize(self, *, elapsed: float, num_workers: int) -> None:
        """Record run extent so utilisation fractions are well-defined."""
        self._elapsed = elapsed
        self._num_workers = num_workers

    def rung_occupancy(self) -> dict[int, int]:
        return {rung: len(members) for rung, members in sorted(self._rung_members.items())}

    def worker_utilization(self, elapsed: float | None = None) -> dict[int, float]:
        """Busy fraction per worker (requires ``finalize`` or ``elapsed``)."""
        horizon = elapsed if elapsed is not None else self._elapsed
        if horizon is None or horizon <= 0:
            return {w: 0.0 for w in self._worker_busy}
        return {
            w: min(busy / horizon, 1.0) for w, busy in sorted(self._worker_busy.items())
        }

    def report(self) -> MetricsReport:
        """Snapshot everything into a :class:`MetricsReport`."""
        elapsed = self._elapsed if self._elapsed is not None else 0.0
        num_workers = self._num_workers if self._num_workers is not None else len(
            self._worker_busy
        )
        snap = self.registry.snapshot()
        started = snap["counters"].get("jobs_started", 0.0)
        failed = snap["counters"].get("jobs_failed", 0.0) + snap["counters"].get(
            "jobs_timed_out", 0.0
        )
        horizon = max(elapsed, 1e-12)
        cluster_denominator = max(num_workers, 1) * horizon
        return MetricsReport(
            counters=snap["counters"],
            gauges=snap["gauges"],
            histograms=snap["histograms"],
            rung_occupancy=self.rung_occupancy(),
            rung_occupancy_series=list(self._rung_series),
            worker_utilization=self.worker_utilization(elapsed),
            utilization_series=[
                (t, min(total / cluster_denominator, 1.0))
                for t, total in self._utilization_series
            ],
            failure_rate=failed / started if started else 0.0,
            elapsed=elapsed,
            num_workers=num_workers,
            jobs_retried=snap["counters"].get("jobs_retried", 0.0),
            jobs_timed_out=snap["counters"].get("jobs_timed_out", 0.0),
            trials_abandoned=snap["counters"].get("trials_abandoned", 0.0),
            time_lost_to_failures=snap["counters"].get("time_lost_to_failures", 0.0),
        )
