"""Event consumers: in-memory (tests), JSONL (offline analysis), live ASCII.

A sink is anything with ``write(event)`` / ``flush()`` / ``close()``.  Sinks
never see events concurrently — the hub serialises emission — so they need
no locking of their own.
"""

from __future__ import annotations

import os
from typing import IO, Any, Protocol, runtime_checkable

from ..canonical import encode_canonical
from .events import TelemetryEvent
from .metrics import MetricsCollector

__all__ = ["TelemetrySink", "InMemorySink", "JSONLSink", "LiveSummarySink", "render_summary"]


@runtime_checkable
class TelemetrySink(Protocol):
    """Structural interface every sink implements."""

    def write(self, event: TelemetryEvent) -> None: ...

    def flush(self) -> None: ...

    def close(self) -> None: ...


class InMemorySink:
    """Keep every event in a list — the test-suite workhorse."""

    def __init__(self) -> None:
        self.events: list[TelemetryEvent] = []

    def write(self, event: TelemetryEvent) -> None:
        self.events.append(event)

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self.events)

    def kinds(self) -> list[str]:
        """Event kind values in emission order (handy in assertions)."""
        return [e.kind.value for e in self.events]


class JSONLSink:
    """Append one JSON object per event to a file (or file-like object).

    The serialisation is canonical — sorted keys, fixed separators, ``None``
    fields omitted, wall-clock excluded unless asked for — so a seeded
    simulation run exports a **byte-identical** file every time.  That is
    the property regression tests and offline diffing lean on.  Encoding
    goes through the hand-rolled fast path in :mod:`repro.canonical`
    (byte-identical to the historical ``json.dumps`` call, pinned by
    ``tests/telemetry/test_canonical.py``) — one line per event makes this
    the hottest serialisation site when a sink is attached.
    """

    def __init__(self, path: str | os.PathLike[str] | IO[str], *, include_wall_time: bool = False):
        self.include_wall_time = include_wall_time
        if hasattr(path, "write"):
            self._file: IO[str] = path  # type: ignore[assignment]
            self._owns_file = False
        else:
            self._file = open(path, "w", encoding="utf-8")
            self._owns_file = True
        self._closed = False

    def write(self, event: TelemetryEvent) -> None:
        if self._closed:
            raise ValueError("JSONLSink is closed")
        line = encode_canonical(event.to_dict(include_wall_time=self.include_wall_time))
        self._file.write(line + "\n")

    def flush(self) -> None:
        if not self._closed:
            self._file.flush()

    def finalize(self, **_: Any) -> None:
        """End-of-run durability: flush and fsync the file to disk.

        The hub duck-types ``finalize`` onto any sink exposing it; for a
        JSONL stream the useful end-of-run action is making the bytes
        durable, so a crash *after* a run completes can never lose the tail
        of its event log.  In-memory buffers (``io.StringIO``) have no file
        descriptor and skip the fsync.
        """
        if self._closed:
            return
        self._file.flush()
        fileno = getattr(self._file, "fileno", None)
        if fileno is not None:
            try:
                os.fsync(fileno())
            except (OSError, ValueError):
                pass  # not a real file (StringIO, closed pipe, ...)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._file.flush()
        if self._owns_file:
            self._file.close()


class LiveSummarySink:
    """Render a rolling ASCII summary of the run every ``every`` events.

    Owns a private :class:`MetricsCollector` so it can be attached alone;
    the output reuses the repo's ASCII-chart sparklines, keeping the whole
    observability stack dependency-free.
    """

    def __init__(self, stream: IO[str] | None = None, *, every: int = 200):
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        import sys

        self.stream = stream if stream is not None else sys.stderr
        self.every = every
        self.collector = MetricsCollector()
        self._since_render = 0
        self._finalized = False
        self._final_rendered = False

    def write(self, event: TelemetryEvent) -> None:
        self.collector.write(event)
        self._since_render += 1
        if self._since_render >= self.every:
            self._since_render = 0
            self.stream.write(render_summary(self.collector, now=event.time) + "\n")

    def finalize(self, *, elapsed: float, num_workers: int) -> None:
        """Learn the run horizon (the hub calls this at end of run)."""
        self.collector.finalize(elapsed=elapsed, num_workers=num_workers)
        self._finalized = True

    def flush(self) -> None:
        self.stream.flush()

    def close(self) -> None:
        # Final render: the one-call markdown summary of the whole run,
        # emitted once the horizon is known (i.e. the run finalized).
        if self._finalized and not self._final_rendered:
            self._final_rendered = True
            self.stream.write("final summary\n")
            self.stream.write(self.collector.report().to_markdown() + "\n")
        self.flush()


def render_summary(collector: MetricsCollector, *, now: float | None = None) -> str:
    """One telemetry dashboard frame as plain text.

    Shows the headline counters, rung occupancy as a bar-per-rung, the
    cluster-busy sparkline, and the promotion-latency/queue-wait summaries.
    """
    from ..analysis.ascii_chart import sparkline

    reg = collector.registry
    counters = reg.counters
    lines = []
    header = "telemetry"
    if now is not None:
        header += f" @ t={now:g}"
    lines.append(header)
    headline = [
        ("trials", "trials_started"),
        ("jobs", "jobs_started"),
        ("reports", "events.report"),
        ("promotions", "promotions"),
        ("failures", "jobs_failed"),
        ("restores", "checkpoint_restores"),
        ("idle polls", "worker_idle_polls"),
    ]
    parts = [
        f"{label}={int(counters[key].value)}" for label, key in headline if key in counters
    ]
    if parts:
        lines.append("  " + "  ".join(parts))

    occupancy = collector.rung_occupancy()
    if occupancy:
        widest = max(occupancy.values())
        for rung, count in occupancy.items():
            bar = "#" * max(int(count / widest * 40), 1)
            lines.append(f"  rung {rung:>2} |{bar:<40}| {count}")

    series = [total for _, total in collector._utilization_series]
    if series:
        lines.append(f"  busy worker-time {sparkline(series[-60:])} ({series[-1]:g})")

    for name in ("promotion_latency", "queue_wait"):
        hist = reg.histograms.get(name)
        if hist is not None and hist.count:
            summary = hist.summary()
            lines.append(
                f"  {name}: n={summary['count']} mean={summary['mean']:.3g} "
                f"p50={summary['p50']:.3g} p90={summary['p90']:.3g} max={summary['max']:.3g}"
            )
    return "\n".join(lines)
