"""repro: a reproduction of "A System for Massively Parallel Hyperparameter
Tuning" (Li et al., MLSys 2020) — ASHA, its lineage, its baselines, and the
simulated distributed substrate its evaluation ran on.

Quick start::

    import numpy as np
    from repro import ASHA, SimulatedCluster
    from repro.objectives import mlp_real

    objective = mlp_real.make_objective()
    scheduler = ASHA(objective.space, np.random.default_rng(0),
                     min_resource=1, max_resource=64, eta=4)
    cluster = SimulatedCluster(num_workers=8)
    result = cluster.run(scheduler, objective, time_limit=2000)
    print(scheduler.best_trial().config)
"""

from . import (
    analysis,
    backend,
    core,
    experiments,
    models,
    objectives,
    searchers,
    searchspace,
    study,
    telemetry,
)
from .backend import (
    FailureInjectingObjective,
    RetryPolicy,
    SimulatedCluster,
    ThreadPoolBackend,
)
from .core import (
    ASHA,
    BOHB,
    PBT,
    AsyncBOHB,
    AsyncHyperband,
    DoublingSHA,
    Fabolas,
    Hyperband,
    ParallelAsyncHyperband,
    RandomSearch,
    Scheduler,
    SynchronousSHA,
    VizierGP,
)
from .core import GridSearch
from .core import SCHEDULERS, build_scheduler
from .searchers import (
    SEARCHERS,
    GPEISearcher,
    GridSearcher,
    KDESearcher,
    RandomSearcher,
    Searcher,
    build_searcher,
)
from .searchspace import Choice, IntUniform, LogUniform, QUniform, SearchSpace, Uniform
from .study import Journal, Study
from .telemetry import TelemetryHub
from .tune import FunctionObjective, TuneResult, tune

__version__ = "1.0.0"

__all__ = [
    "ASHA",
    "AsyncBOHB",
    "AsyncHyperband",
    "BOHB",
    "Choice",
    "DoublingSHA",
    "Fabolas",
    "FailureInjectingObjective",
    "FunctionObjective",
    "GPEISearcher",
    "GridSearch",
    "GridSearcher",
    "Hyperband",
    "IntUniform",
    "Journal",
    "KDESearcher",
    "LogUniform",
    "PBT",
    "ParallelAsyncHyperband",
    "QUniform",
    "RandomSearch",
    "RandomSearcher",
    "RetryPolicy",
    "SCHEDULERS",
    "SEARCHERS",
    "Scheduler",
    "SearchSpace",
    "Searcher",
    "Study",
    "build_scheduler",
    "build_searcher",
    "SimulatedCluster",
    "SynchronousSHA",
    "TelemetryHub",
    "ThreadPoolBackend",
    "TuneResult",
    "Uniform",
    "VizierGP",
    "analysis",
    "tune",
    "backend",
    "core",
    "experiments",
    "models",
    "objectives",
    "searchers",
    "searchspace",
    "study",
    "telemetry",
]
