"""High-level entry point: tune a plain Python function with one call.

Everything in :mod:`repro.core` speaks the scheduler/objective protocols;
this module is the friendly wrapper a downstream user reaches for first:

    from repro import tune
    from repro.searchspace import LogUniform, SearchSpace

    space = SearchSpace({"lr": LogUniform(1e-4, 1.0)})

    def train(config, state, from_resource, to_resource):
        ...train incrementally...
        return state, validation_loss

    result = tune(train, space, max_resource=81, scheduler="asha",
                  num_workers=8, time_limit=5_000, seed=0)
    print(result.best_config, result.best_loss)

The training callable receives ``(config, state, from_resource,
to_resource)`` and returns ``(state, loss)``; pass ``state=None`` through if
your function is not resumable (it will then be retrained from scratch at
each fidelity, and you should set ``scheduler_kwargs={"from_checkpoint":
False}`` for SHA-family schedulers so budgets are accounted correctly).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from .backend import ProcessPoolBackend, RetryPolicy, SimulatedCluster, ThreadPoolBackend
from .backend.trial_runner import BackendResult
from .core import SCHEDULERS, Scheduler, build_scheduler
from .objectives.base import Objective
from .searchers import SEARCHERS, Searcher, build_searcher
from .searchspace import Config, SearchSpace
from .study import Journal, Study, build_spec
from .telemetry import TelemetryHub

__all__ = ["tune", "TuneResult", "FunctionObjective", "SCHEDULERS"]

TrainFn = Callable[[Config, Any, float, float], tuple[Any, float]]


class FunctionObjective(Objective):
    """Adapt a plain training callable to the :class:`Objective` protocol.

    Parameters
    ----------
    train_fn:
        ``(config, state, from_resource, to_resource) -> (state, loss)``.
    space, max_resource:
        Search space and maximum resource.
    cost_fn:
        Optional ``(config, from_resource, to_resource) -> simulated cost``;
        defaults to the resource delta (only used by the simulated backend).
    """

    def __init__(
        self,
        train_fn: TrainFn,
        space: SearchSpace,
        max_resource: float,
        cost_fn: Callable[[Config, float, float], float] | None = None,
    ):
        self.space = space
        self.max_resource = max_resource
        self._train_fn = train_fn
        self._cost_fn = cost_fn

    def initial_state(self, config: Config) -> Any:
        return None

    def train(self, state: Any, config: Config, from_resource: float, to_resource: float):
        return self._train_fn(config, state, from_resource, to_resource)

    def cost(self, config: Config, from_resource: float, to_resource: float) -> float:
        if self._cost_fn is not None:
            return self._cost_fn(config, from_resource, to_resource)
        return super().cost(config, from_resource, to_resource)


# Scheduler construction lives in :mod:`repro.core.registry` (one canonical
# name -> constructor map, shared with journal resume); :data:`SCHEDULERS` is
# re-exported above for backwards compatibility.


@dataclass
class TuneResult:
    """What :func:`tune` hands back."""

    best_config: Config | None
    best_loss: float | None
    scheduler: Scheduler
    backend_result: BackendResult
    num_trials: int = 0
    extras: dict = field(default_factory=dict)
    #: The hub used for the run (``None`` when telemetry was off); its sinks
    #: hold the raw event stream, ``backend_result.telemetry`` the metrics.
    telemetry: TelemetryHub | None = None
    #: The :class:`~repro.study.Study` that drove the run — journal-backed
    #: when ``tune(..., journal=...)`` was given, unjournalled otherwise.
    study: Study | None = None

    @property
    def trace(self):
        """The run's reconstructed :class:`~repro.telemetry.Trace`.

        ``None`` unless the run was started with ``tune(..., trace=True)``.
        """
        return self.backend_result.trace


def tune(
    train_fn: TrainFn,
    space: SearchSpace,
    *,
    max_resource: float,
    min_resource: float = 1.0,
    eta: int = 4,
    scheduler: str | Scheduler = "asha",
    scheduler_kwargs: dict | None = None,
    searcher: str | Searcher | None = None,
    searcher_kwargs: dict | None = None,
    num_workers: int = 4,
    time_limit: float | None = None,
    backend: str = "simulated",
    cost_fn: Callable[[Config, float, float], float] | None = None,
    seed: int = 0,
    telemetry: TelemetryHub | bool | None = None,
    retry_policy: RetryPolicy | None = None,
    trace: bool = False,
    journal: str | os.PathLike[str] | Journal | None = None,
    resume: bool = False,
) -> TuneResult:
    """Tune ``train_fn`` over ``space`` and return the best configuration.

    Parameters
    ----------
    scheduler:
        One of :data:`SCHEDULERS` (default ``"asha"``), ``"vizier"`` (an
        alias for ``"gp"``), or an already-constructed
        :class:`~repro.core.Scheduler` instance to run as-is.
    searcher:
        Optional proposal strategy for searcher-aware schedulers: one of
        :data:`~repro.searchers.SEARCHERS` (``"random"``, ``"kde"``,
        ``"gp"``, ``"grid"``) or a :class:`~repro.searchers.Searcher`
        instance.  ``scheduler="asha", searcher="kde"`` is asynchronous
        BOHB; ``searcher="gp"`` a MOBSTER-family tuner.
    searcher_kwargs:
        Keyword arguments for the named searcher's constructor.
    backend:
        ``"simulated"`` (discrete-event clock driven by ``cost_fn``),
        ``"processes"`` (the same simulated clock, but ``train_fn`` runs in
        a fork-based process pool — GIL-free for CPU-bound training; states
        returned by ``train_fn`` must pickle), or ``"threads"`` (real
        wall-clock parallel execution; ``time_limit`` is then in seconds).
    time_limit:
        Backend time budget; defaults to ``50 * max_resource`` simulated
        units (or 60 s for the thread backend).
    telemetry:
        ``True`` builds a :class:`~repro.telemetry.TelemetryHub` with a
        metrics collector; or pass your own hub (e.g. with a JSONL sink).
        The metrics report lands on ``result.backend_result.telemetry``.
    retry_policy:
        Optional :class:`~repro.backend.RetryPolicy` making the run fault
        tolerant: failed jobs are retried with backoff instead of forfeited,
        jobs running past the policy's deadline are killed and retried, and
        trials that keep failing are quarantined.  See
        ``docs/fault_tolerance.md``.
    trace:
        ``True`` reconstructs the run's span/timeline trace — per-trial
        attempt spans, worker busy/idle timelines, critical-path and
        straggler attribution, Chrome-trace export — on
        ``result.backend_result.trace`` (also reachable as
        ``result.trace``).  See ``docs/tracing.md``.
    journal:
        Optional crash-safety journal: a path (a fresh JSONL journal is
        written there) or an open :class:`~repro.study.Journal`.  Every
        scheduler interaction is logged write-ahead; see ``docs/study.md``.
    resume:
        With ``resume=True`` and ``journal`` pointing at an interrupted
        run's file, the study picks up where the journal ends.  Call with
        the *same arguments* as the original run (scheduler, seed, workers,
        backend, ...): the simulated backends re-execute deterministically,
        reusing journalled losses instead of re-training, and the finished
        journal/telemetry/trace are byte-identical to an uninterrupted
        run's.  The thread backend catches the scheduler up eagerly instead
        (wall-clock timings cannot replay).
    """
    objective = FunctionObjective(train_fn, space, max_resource, cost_fn)
    rng = np.random.default_rng(seed)
    spec = None
    if isinstance(scheduler, Scheduler):
        if scheduler_kwargs or searcher is not None:
            raise ValueError(
                "a pre-built scheduler instance cannot be combined with "
                "scheduler_kwargs or searcher; configure it at construction"
            )
        sched = scheduler
    else:
        built_searcher = (
            build_searcher(searcher, dict(searcher_kwargs or {})) if searcher is not None else None
        )
        sched = build_scheduler(
            scheduler,
            space,
            rng,
            min_resource=min_resource,
            max_resource=max_resource,
            eta=eta,
            kwargs=dict(scheduler_kwargs or {}),
            searcher=built_searcher,
        )
        if journal is not None and not resume and (searcher is None or isinstance(searcher, str)):
            # Record the construction recipe in the journal header so a
            # bare ``Study.resume(path)`` can rebuild this scheduler.
            spec = build_spec(
                scheduler=scheduler,
                space=space,
                seed=seed,
                min_resource=min_resource,
                max_resource=max_resource,
                eta=eta,
                scheduler_kwargs=scheduler_kwargs,
                searcher=searcher,
                searcher_kwargs=searcher_kwargs,
            )
    if resume:
        if journal is None or isinstance(journal, Journal):
            raise ValueError(
                "resume=True requires journal to be the interrupted run's file path"
            )
        mode = "restore" if backend == "threads" else "replay"
        study = Study.resume(journal, scheduler=sched, mode=mode)
    else:
        study = Study(sched, journal=journal, spec=spec)
    hub: TelemetryHub | None
    if telemetry is True:
        hub = TelemetryHub.with_metrics()
    elif telemetry is False:
        hub = None
    else:
        hub = telemetry
    if backend == "simulated":
        limit = time_limit if time_limit is not None else 50.0 * max_resource
        result = SimulatedCluster(num_workers, seed=seed).run(
            study, objective, time_limit=limit, telemetry=hub,
            retry_policy=retry_policy, trace=trace,
        )
    elif backend == "processes":
        limit = time_limit if time_limit is not None else 50.0 * max_resource
        result = ProcessPoolBackend(num_workers, seed=seed).run(
            study, objective, time_limit=limit, telemetry=hub,
            retry_policy=retry_policy, trace=trace,
        )
    elif backend == "threads":
        limit = time_limit if time_limit is not None else 60.0
        result = ThreadPoolBackend(num_workers).run(
            study, objective, time_limit=limit, telemetry=hub,
            retry_policy=retry_policy, trace=trace,
        )
    else:
        raise KeyError(
            f"unknown backend {backend!r}; options: simulated, processes, threads"
        )
    best = sched.best_trial()
    return TuneResult(
        best_config=best.config if best else None,
        best_loss=best.last_loss if best else None,
        scheduler=sched,
        backend_result=result,
        num_trials=sched.num_trials,
        telemetry=hub,
        study=study,
    )
