"""High-level entry point: tune a plain Python function with one call.

Everything in :mod:`repro.core` speaks the scheduler/objective protocols;
this module is the friendly wrapper a downstream user reaches for first:

    from repro import tune
    from repro.searchspace import LogUniform, SearchSpace

    space = SearchSpace({"lr": LogUniform(1e-4, 1.0)})

    def train(config, state, from_resource, to_resource):
        ...train incrementally...
        return state, validation_loss

    result = tune(train, space, max_resource=81, scheduler="asha",
                  num_workers=8, time_limit=5_000, seed=0)
    print(result.best_config, result.best_loss)

The training callable receives ``(config, state, from_resource,
to_resource)`` and returns ``(state, loss)``; pass ``state=None`` through if
your function is not resumable (it will then be retrained from scratch at
each fidelity, and you should set ``scheduler_kwargs={"from_checkpoint":
False}`` for SHA-family schedulers so budgets are accounted correctly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from .backend import ProcessPoolBackend, RetryPolicy, SimulatedCluster, ThreadPoolBackend
from .backend.trial_runner import BackendResult
from .core import (
    ASHA,
    BOHB,
    PBT,
    AsyncHyperband,
    Hyperband,
    RandomSearch,
    Scheduler,
    SynchronousSHA,
    VizierGP,
)
from .objectives.base import Objective
from .searchers import SEARCHERS, Searcher, build_searcher
from .searchspace import Config, SearchSpace
from .telemetry import TelemetryHub

__all__ = ["tune", "TuneResult", "FunctionObjective", "SCHEDULERS"]

TrainFn = Callable[[Config, Any, float, float], tuple[Any, float]]


class FunctionObjective(Objective):
    """Adapt a plain training callable to the :class:`Objective` protocol.

    Parameters
    ----------
    train_fn:
        ``(config, state, from_resource, to_resource) -> (state, loss)``.
    space, max_resource:
        Search space and maximum resource.
    cost_fn:
        Optional ``(config, from_resource, to_resource) -> simulated cost``;
        defaults to the resource delta (only used by the simulated backend).
    """

    def __init__(
        self,
        train_fn: TrainFn,
        space: SearchSpace,
        max_resource: float,
        cost_fn: Callable[[Config, float, float], float] | None = None,
    ):
        self.space = space
        self.max_resource = max_resource
        self._train_fn = train_fn
        self._cost_fn = cost_fn

    def initial_state(self, config: Config) -> Any:
        return None

    def train(self, state: Any, config: Config, from_resource: float, to_resource: float):
        return self._train_fn(config, state, from_resource, to_resource)

    def cost(self, config: Config, from_resource: float, to_resource: float) -> float:
        if self._cost_fn is not None:
            return self._cost_fn(config, from_resource, to_resource)
        return super().cost(config, from_resource, to_resource)


def _default_bracket_size(min_resource: float, max_resource: float, eta: int) -> int:
    """Smallest ``n`` filling a full SHA bracket (one config reaching ``R``)."""
    rungs = np.floor(np.log(max_resource / min_resource) / np.log(eta))
    return max(int(eta**rungs), eta)


def _build_scheduler(
    name: str,
    space: SearchSpace,
    rng: np.random.Generator,
    *,
    min_resource: float,
    max_resource: float,
    eta: int,
    kwargs: dict,
    searcher: Searcher | None = None,
) -> Scheduler:
    if name == "vizier":
        name = "gp"
    if searcher is not None:
        if name in ("bohb", "pbt"):
            raise ValueError(
                f"scheduler {name!r} owns its own sampling and does not accept a "
                "searcher; use scheduler='sha' or 'asha' with searcher='kde' for "
                "the BOHB family"
            )
        kwargs.setdefault("searcher", searcher)
    if name == "asha":
        return ASHA(
            space, rng, min_resource=min_resource, max_resource=max_resource, eta=eta, **kwargs
        )
    if name == "sha":
        kwargs.setdefault("n", _default_bracket_size(min_resource, max_resource, eta))
        return SynchronousSHA(
            space, rng, min_resource=min_resource, max_resource=max_resource, eta=eta, **kwargs
        )
    if name == "hyperband":
        return Hyperband(
            space, rng, min_resource=min_resource, max_resource=max_resource, eta=eta, **kwargs
        )
    if name == "async_hyperband":
        return AsyncHyperband(
            space, rng, min_resource=min_resource, max_resource=max_resource, eta=eta, **kwargs
        )
    if name == "bohb":
        kwargs.setdefault("n", _default_bracket_size(min_resource, max_resource, eta))
        return BOHB(
            space, rng, min_resource=min_resource, max_resource=max_resource, eta=eta, **kwargs
        )
    if name == "random":
        return RandomSearch(space, rng, max_resource=max_resource, **kwargs)
    if name == "pbt":
        kwargs.setdefault("interval", max_resource / 8.0)
        return PBT(space, rng, max_resource=max_resource, **kwargs)
    if name == "gp":
        return VizierGP(space, rng, max_resource=max_resource, **kwargs)
    raise KeyError(
        f"unknown scheduler {name!r}; scheduler options: {sorted(SCHEDULERS)}, "
        f"searcher options: {sorted(SEARCHERS)}"
    )


#: Scheduler names accepted by :func:`tune` (``"vizier"`` aliases ``"gp"``).
SCHEDULERS = ("asha", "sha", "hyperband", "async_hyperband", "bohb", "random", "pbt", "gp")


@dataclass
class TuneResult:
    """What :func:`tune` hands back."""

    best_config: Config | None
    best_loss: float | None
    scheduler: Scheduler
    backend_result: BackendResult
    num_trials: int = 0
    extras: dict = field(default_factory=dict)
    #: The hub used for the run (``None`` when telemetry was off); its sinks
    #: hold the raw event stream, ``backend_result.telemetry`` the metrics.
    telemetry: TelemetryHub | None = None

    @property
    def trace(self):
        """The run's reconstructed :class:`~repro.telemetry.Trace`.

        ``None`` unless the run was started with ``tune(..., trace=True)``.
        """
        return self.backend_result.trace


def tune(
    train_fn: TrainFn,
    space: SearchSpace,
    *,
    max_resource: float,
    min_resource: float = 1.0,
    eta: int = 4,
    scheduler: str | Scheduler = "asha",
    scheduler_kwargs: dict | None = None,
    searcher: str | Searcher | None = None,
    searcher_kwargs: dict | None = None,
    num_workers: int = 4,
    time_limit: float | None = None,
    backend: str = "simulated",
    cost_fn: Callable[[Config, float, float], float] | None = None,
    seed: int = 0,
    telemetry: TelemetryHub | bool | None = None,
    retry_policy: RetryPolicy | None = None,
    trace: bool = False,
) -> TuneResult:
    """Tune ``train_fn`` over ``space`` and return the best configuration.

    Parameters
    ----------
    scheduler:
        One of :data:`SCHEDULERS` (default ``"asha"``), ``"vizier"`` (an
        alias for ``"gp"``), or an already-constructed
        :class:`~repro.core.Scheduler` instance to run as-is.
    searcher:
        Optional proposal strategy for searcher-aware schedulers: one of
        :data:`~repro.searchers.SEARCHERS` (``"random"``, ``"kde"``,
        ``"gp"``, ``"grid"``) or a :class:`~repro.searchers.Searcher`
        instance.  ``scheduler="asha", searcher="kde"`` is asynchronous
        BOHB; ``searcher="gp"`` a MOBSTER-family tuner.
    searcher_kwargs:
        Keyword arguments for the named searcher's constructor.
    backend:
        ``"simulated"`` (discrete-event clock driven by ``cost_fn``),
        ``"processes"`` (the same simulated clock, but ``train_fn`` runs in
        a fork-based process pool — GIL-free for CPU-bound training; states
        returned by ``train_fn`` must pickle), or ``"threads"`` (real
        wall-clock parallel execution; ``time_limit`` is then in seconds).
    time_limit:
        Backend time budget; defaults to ``50 * max_resource`` simulated
        units (or 60 s for the thread backend).
    telemetry:
        ``True`` builds a :class:`~repro.telemetry.TelemetryHub` with a
        metrics collector; or pass your own hub (e.g. with a JSONL sink).
        The metrics report lands on ``result.backend_result.telemetry``.
    retry_policy:
        Optional :class:`~repro.backend.RetryPolicy` making the run fault
        tolerant: failed jobs are retried with backoff instead of forfeited,
        jobs running past the policy's deadline are killed and retried, and
        trials that keep failing are quarantined.  See
        ``docs/fault_tolerance.md``.
    trace:
        ``True`` reconstructs the run's span/timeline trace — per-trial
        attempt spans, worker busy/idle timelines, critical-path and
        straggler attribution, Chrome-trace export — on
        ``result.backend_result.trace`` (also reachable as
        ``result.trace``).  See ``docs/tracing.md``.
    """
    objective = FunctionObjective(train_fn, space, max_resource, cost_fn)
    rng = np.random.default_rng(seed)
    if isinstance(scheduler, Scheduler):
        if scheduler_kwargs or searcher is not None:
            raise ValueError(
                "a pre-built scheduler instance cannot be combined with "
                "scheduler_kwargs or searcher; configure it at construction"
            )
        sched = scheduler
    else:
        built_searcher = (
            build_searcher(searcher, dict(searcher_kwargs or {})) if searcher is not None else None
        )
        sched = _build_scheduler(
            scheduler,
            space,
            rng,
            min_resource=min_resource,
            max_resource=max_resource,
            eta=eta,
            kwargs=dict(scheduler_kwargs or {}),
            searcher=built_searcher,
        )
    hub: TelemetryHub | None
    if telemetry is True:
        hub = TelemetryHub.with_metrics()
    elif telemetry is False:
        hub = None
    else:
        hub = telemetry
    if backend == "simulated":
        limit = time_limit if time_limit is not None else 50.0 * max_resource
        result = SimulatedCluster(num_workers, seed=seed).run(
            sched, objective, time_limit=limit, telemetry=hub,
            retry_policy=retry_policy, trace=trace,
        )
    elif backend == "processes":
        limit = time_limit if time_limit is not None else 50.0 * max_resource
        result = ProcessPoolBackend(num_workers, seed=seed).run(
            sched, objective, time_limit=limit, telemetry=hub,
            retry_policy=retry_policy, trace=trace,
        )
    elif backend == "threads":
        limit = time_limit if time_limit is not None else 60.0
        result = ThreadPoolBackend(num_workers).run(
            sched, objective, time_limit=limit, telemetry=hub,
            retry_policy=retry_policy, trace=trace,
        )
    else:
        raise KeyError(
            f"unknown backend {backend!r}; options: simulated, processes, threads"
        )
    best = sched.best_trial()
    return TuneResult(
        best_config=best.config if best else None,
        best_loss=best.last_loss if best else None,
        scheduler=sched,
        backend_result=result,
        num_trials=sched.num_trials,
        telemetry=hub,
    )
