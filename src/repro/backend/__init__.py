"""Execution substrates: simulated cluster, real thread pool, checkpoints,
and the fault-tolerance layer shared by both backends."""

from .checkpoint import CheckpointStore
from .events import EventQueue, SimEvent
from .faults import FailureInjectingObjective, FaultManager, InjectedFailure, RetryPolicy
from .process_pool import ProcessPoolBackend
from .simulation import SimulatedCluster
from .threaded import ThreadPoolBackend
from .trial_runner import BackendResult, FailureRecord

__all__ = [
    "BackendResult",
    "CheckpointStore",
    "EventQueue",
    "FailureInjectingObjective",
    "FailureRecord",
    "FaultManager",
    "InjectedFailure",
    "ProcessPoolBackend",
    "RetryPolicy",
    "SimEvent",
    "SimulatedCluster",
    "ThreadPoolBackend",
]
