"""Execution substrates: simulated cluster, real thread pool, checkpoints."""

from .checkpoint import CheckpointStore
from .events import EventQueue, SimEvent
from .simulation import SimulatedCluster
from .threaded import ThreadPoolBackend
from .trial_runner import BackendResult

__all__ = [
    "BackendResult",
    "CheckpointStore",
    "EventQueue",
    "SimEvent",
    "SimulatedCluster",
    "ThreadPoolBackend",
]
