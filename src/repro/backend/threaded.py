"""Real parallel execution: a thread-pool backend for genuine objectives.

The simulator in :mod:`repro.backend.simulation` reproduces the paper's
*timing* behaviour; this backend demonstrates that the same schedulers drive
*real* training runs concurrently.  Worker threads pull jobs from the
scheduler under a lock (the scheduler itself is not thread-safe — exactly
like ASHA's single-master design, where ``get_job`` runs on the master and
only training is distributed), execute ``objective.train`` without the lock,
and report results back under the lock.

Use it with :class:`repro.objectives.mlp_real.RealMLPObjective` or any other
objective whose ``train`` does real work; numpy releases the GIL in its
inner kernels, so training genuinely overlaps.
"""

from __future__ import annotations

import threading
import time as _time

from ..core.scheduler import Scheduler
from ..objectives.base import Objective
from ..telemetry import EventKind, TelemetryHub
from .checkpoint import CheckpointStore
from .trial_runner import BackendResult, record_report

__all__ = ["ThreadPoolBackend"]


class ThreadPoolBackend:
    """Run a search with real threads and wall-clock time.

    Parameters
    ----------
    num_workers:
        Worker threads.
    poll_interval:
        How long an idle worker sleeps before re-asking the scheduler
        (synchronous schedulers block workers at rung barriers).
    """

    def __init__(self, num_workers: int, poll_interval: float = 0.005):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers
        self.poll_interval = poll_interval

    def run(
        self,
        scheduler: Scheduler,
        objective: Objective,
        *,
        time_limit: float,
        max_resource: float | None = None,
        max_measurements: int | None = None,
        telemetry: TelemetryHub | None = None,
    ) -> BackendResult:
        """Drive ``scheduler`` with real threads until ``time_limit`` seconds.

        With a ``telemetry`` hub attached, every dispatch/report/failure is
        emitted with the backend's wall clock (seconds since run start) and
        the worker thread's index, so the collector can reconstruct the
        per-worker utilisation series the paper's Section 3.2 claims are
        stated in.
        """
        if time_limit <= 0:
            raise ValueError(f"time_limit must be positive, got {time_limit}")
        done_resource = max_resource if max_resource is not None else objective.max_resource
        store = CheckpointStore()
        result = BackendResult()
        lock = threading.Lock()
        stop = threading.Event()
        start = _time.monotonic()
        busy_time = [0.0]
        hub = telemetry if telemetry is not None else scheduler.telemetry
        if telemetry is not None:
            scheduler.attach_telemetry(hub)
        store.telemetry = hub

        def clock() -> float:
            return _time.monotonic() - start

        def worker(worker_id: int) -> None:
            was_idle = False
            while not stop.is_set() and clock() < time_limit:
                with lock:
                    if scheduler.is_done():
                        return
                    if (
                        max_measurements is not None
                        and len(result.measurements) >= max_measurements
                    ):
                        stop.set()
                        return
                    if hub:
                        # The scheduler emits under the backend lock, so its
                        # decision events interleave in dispatch order.
                        hub.set_time(clock())
                    job = scheduler.next_job()
                    if job is not None:
                        result.jobs_dispatched += 1
                        store.prepare(job)  # donor snapshot under the lock
                if job is None:
                    if hub and not was_idle:
                        # Emit only on the busy -> idle transition, not every
                        # poll, so a rung barrier doesn't flood the stream.
                        hub.emit(EventKind.WORKER_IDLE, time=clock(), worker_id=worker_id)
                    was_idle = True
                    _time.sleep(self.poll_interval)
                    continue
                was_idle = False
                t0 = clock()
                if hub:
                    hub.emit(
                        EventKind.JOB_STARTED,
                        time=t0,
                        trial_id=job.trial_id,
                        job_id=job.job_id,
                        worker_id=worker_id,
                        rung=job.rung,
                        bracket=job.bracket,
                        resource=job.resource,
                        checkpoint_resource=job.checkpoint_resource,
                    )
                try:
                    # Real training happens outside the lock; the store method
                    # both trains and persists the checkpoint, so serialise the
                    # (cheap) checkpoint lookup/update inside `run_job` itself
                    # by holding the lock only around the dict mutation.
                    from_resource, state = store.starting_state(job, objective)
                    state, loss = objective.train(state, job.config, from_resource, job.resource)
                    failed = False
                except Exception:
                    failed = True
                t1 = clock()
                with lock:
                    busy_time[0] += t1 - t0
                    if failed:
                        store.discard(job)
                        scheduler.on_job_failed(job)
                        result.failures.append((t1, job.trial_id))
                        if hub:
                            hub.emit(
                                EventKind.JOB_FAILED,
                                time=t1,
                                trial_id=job.trial_id,
                                job_id=job.job_id,
                                worker_id=worker_id,
                                rung=job.rung,
                                bracket=job.bracket,
                                reason="exception",
                                busy=t1 - t0,
                            )
                    else:
                        store.put(job.trial_id, job.resource, state)
                        record_report(result, scheduler, job, loss, t1, done_resource)
                        if hub:
                            hub.emit(
                                EventKind.REPORT,
                                time=t1,
                                trial_id=job.trial_id,
                                job_id=job.job_id,
                                worker_id=worker_id,
                                rung=job.rung,
                                bracket=job.bracket,
                                loss=loss,
                                resource=job.resource,
                                busy=t1 - t0,
                            )

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(self.num_workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=time_limit + 5.0)
        stop.set()
        result.elapsed = clock()
        result.utilization = min(busy_time[0] / (self.num_workers * max(result.elapsed, 1e-9)), 1.0)
        if hub:
            result.telemetry = hub.finalize(
                elapsed=max(result.elapsed, 1e-9), num_workers=self.num_workers
            )
        return result
