"""Real parallel execution: a thread-pool backend for genuine objectives.

The simulator in :mod:`repro.backend.simulation` reproduces the paper's
*timing* behaviour; this backend demonstrates that the same schedulers drive
*real* training runs concurrently.  Worker threads pull jobs from the
scheduler under a lock (the scheduler itself is not thread-safe — exactly
like ASHA's single-master design, where ``get_job`` runs on the master and
only training is distributed), execute ``objective.train`` without the lock,
and report results back under the lock.

Fault tolerance mirrors the simulator: pass a
:class:`~repro.backend.faults.RetryPolicy` to :meth:`ThreadPoolBackend.run`
and crashed jobs are re-queued with wall-clock backoff until their trial's
retry budget runs out, and a watchdog thread enforces
``RetryPolicy.timeout`` (wall-clock seconds) on in-flight jobs.  Python
threads cannot be preempted, so a "killed" job's thread keeps running until
its ``train`` call returns — but the scheduler is released immediately (the
job is requeued or its trial abandoned) and the stale result is discarded
when the thread finally comes back.

Use it with :class:`repro.objectives.mlp_real.RealMLPObjective` or any other
objective whose ``train`` does real work; numpy releases the GIL in its
inner kernels, so training genuinely overlaps.
"""

from __future__ import annotations

import threading
import time as _time
from collections import deque

from ..core.scheduler import Scheduler
from ..core.types import Job
from ..objectives.base import Objective
from ..study import Study
from ..telemetry import EventKind, TelemetryHub
from ..telemetry.runtime import backend_probes
from ..telemetry.tracing import TraceBuilder
from .checkpoint import CheckpointStore
from .faults import FaultManager, RetryPolicy
from .trial_runner import BackendResult, FailureRecord, record_report

__all__ = ["ThreadPoolBackend"]


class ThreadPoolBackend:
    """Run a search with real threads and wall-clock time.

    Parameters
    ----------
    num_workers:
        Worker threads.
    poll_interval:
        How long an idle worker sleeps before re-asking the scheduler
        (synchronous schedulers block workers at rung barriers).
    shutdown_grace:
        After the run's shared ``time_limit`` deadline passes and the stop
        flag is raised, how many extra seconds to wait for straggler threads
        before returning with them still running (they are daemons and hold
        no locks at that point).
    ask_batch_size:
        Jobs pulled per scheduler ask.  The default ``1`` asks once per free
        worker (the historical behaviour, byte-identical event streams).
        Larger values route through :meth:`~repro.study.Study.ask_batch` and
        park the surplus in a prefetch queue shared by all workers under the
        backend lock — amortising the scheduler's per-ask cost at the price
        of slightly staler decisions (prefetched jobs were chosen before
        results that complete in the meantime).  Opt-in.
    """

    def __init__(
        self,
        num_workers: int,
        poll_interval: float = 0.005,
        shutdown_grace: float = 5.0,
        ask_batch_size: int = 1,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if shutdown_grace < 0:
            raise ValueError(f"shutdown_grace must be >= 0, got {shutdown_grace}")
        if ask_batch_size < 1:
            raise ValueError(f"ask_batch_size must be >= 1, got {ask_batch_size}")
        self.num_workers = num_workers
        self.poll_interval = poll_interval
        self.shutdown_grace = shutdown_grace
        self.ask_batch_size = ask_batch_size

    def run(
        self,
        scheduler: Scheduler | Study,
        objective: Objective,
        *,
        time_limit: float,
        max_resource: float | None = None,
        max_measurements: int | None = None,
        telemetry: TelemetryHub | None = None,
        retry_policy: RetryPolicy | None = None,
        trace: bool = False,
    ) -> BackendResult:
        """Drive ``scheduler`` with real threads until ``time_limit`` seconds.

        With a ``telemetry`` hub attached, every dispatch/report/failure is
        emitted with the backend's wall clock (seconds since run start) and
        the worker thread's index, so the collector can reconstruct the
        per-worker utilisation series the paper's Section 3.2 claims are
        stated in.

        With a ``retry_policy``, a job whose ``train`` raises is re-queued
        (``on_job_requeued``) after the policy's backoff and picked up by the
        next free worker, until the trial's consecutive-failure count reaches
        ``max_attempts`` and it is quarantined (``on_trial_abandoned``).
        When ``retry_policy.timeout`` is set, a watchdog thread fails any job
        in flight longer than that many wall-clock seconds; the timeout is
        retry-eligible unless ``retry_timeouts=False``.

        With ``trace=True``, a :class:`~repro.telemetry.TraceBuilder` rides
        along as a sink (a hub is created if none was given) and the
        reconstructed span/timeline :class:`~repro.telemetry.Trace` lands on
        :attr:`BackendResult.trace`.
        """
        if time_limit <= 0:
            raise ValueError(f"time_limit must be positive, got {time_limit}")
        done_resource = max_resource if max_resource is not None else objective.max_resource
        store = CheckpointStore()
        result = BackendResult()
        # None unless a runtime registry is installed (repro.telemetry.runtime);
        # all probe updates below happen under the backend lock.
        probes = backend_probes("threads")
        lock = threading.Lock()
        stop = threading.Event()
        start = _time.monotonic()
        busy_time = [0.0]
        # Workers drive a Study (ask/tell + fault hooks) under the backend
        # lock; a bare scheduler gets an unjournalled wrapper.  Wall-clock
        # journals replay in ``mode="restore"`` (see docs/study.md) — the
        # thread backend's timings cannot be re-executed byte-identically.
        study = scheduler if isinstance(scheduler, Study) else Study(scheduler)
        hub = telemetry if telemetry is not None else study.telemetry
        tracer = None
        if trace:
            tracer = TraceBuilder()
            if not hub:
                hub = TelemetryHub()
            hub.add_sink(tracer)
        if telemetry is not None or tracer is not None:
            study.attach_telemetry(hub)
        store.telemetry = hub
        # A restored study arrives with trials already trained; give their
        # checkpoints lazy placeholders (no-op for fresh runs).
        store.seed_from_trials(study.trials)
        faults = FaultManager(retry_policy) if retry_policy is not None else None
        # Jobs asked in a batch but not yet taken by a worker; shared under
        # the backend lock.  Empty forever when ``ask_batch_size == 1``.
        prefetch: deque[Job] = deque()
        # Retries waiting out their backoff: (ready_at, job, attempt).
        retry_queue: list[tuple[float, Job, int]] = []
        # Dispatch tokens for in-flight jobs — a retried job reuses its job
        # id, so the watchdog and the late-returning thread key on the
        # (job_id, attempt) pair, not the id alone.
        in_flight: dict[tuple[int, int], tuple[Job, float, int]] = {}
        timed_out: set[tuple[int, int]] = set()

        def clock() -> float:
            return _time.monotonic() - start

        def fail_job(
            job: Job,
            worker_id: int | None,
            *,
            reason: str,
            lost: float,
            t: float,
            error: str | None = None,
        ) -> None:
            """Route one failed attempt (caller holds the lock)."""
            result.failures.append((t, job.trial_id))
            result.time_lost_to_failures += lost
            kind = EventKind.JOB_TIMEOUT if reason == "timeout" else EventKind.JOB_FAILED
            extra: dict[str, object] = {}
            if error is not None:
                extra["error"] = error
            if hub:
                hub.set_time(t)
            if faults is None:
                study.on_job_failed(job)
                result.failure_log.append(
                    FailureRecord(
                        time=t,
                        trial_id=job.trial_id,
                        job_id=job.job_id,
                        reason=reason,
                        action="forfeited",
                        error=error,
                        lost=lost,
                    )
                )
                if hub:
                    hub.emit(
                        kind,
                        time=t,
                        trial_id=job.trial_id,
                        job_id=job.job_id,
                        worker_id=worker_id,
                        rung=job.rung,
                        bracket=job.bracket,
                        reason=reason,
                        busy=lost,
                        **extra,
                    )
                return
            decision = faults.record_failure(job, reason=reason, lost=lost)
            result.failure_log.append(
                FailureRecord(
                    time=t,
                    trial_id=job.trial_id,
                    job_id=job.job_id,
                    reason=reason,
                    action="retried" if decision.retry else "abandoned",
                    attempt=decision.failures,
                    error=error,
                    lost=lost,
                )
            )
            if hub:
                hub.emit(
                    kind,
                    time=t,
                    trial_id=job.trial_id,
                    job_id=job.job_id,
                    worker_id=worker_id,
                    rung=job.rung,
                    bracket=job.bracket,
                    reason=reason,
                    attempt=decision.failures,
                    lost=lost,
                    busy=lost,
                    **extra,
                )
            if decision.retry:
                result.jobs_retried += 1
                study.on_job_requeued(job)
                if hub:
                    hub.emit(
                        EventKind.JOB_RETRIED,
                        time=t,
                        trial_id=job.trial_id,
                        job_id=job.job_id,
                        rung=job.rung,
                        bracket=job.bracket,
                        attempt=decision.failures + 1,
                        delay=decision.delay,
                        retry_at=t + decision.delay,
                    )
                retry_queue.append((t + decision.delay, job, decision.failures + 1))
                if probes is not None:
                    probes.retries.inc()
            else:
                result.trials_abandoned += 1
                study.on_trial_abandoned(job)
                if hub:
                    hub.emit(
                        EventKind.TRIAL_ABANDONED,
                        time=t,
                        trial_id=job.trial_id,
                        job_id=job.job_id,
                        rung=job.rung,
                        bracket=job.bracket,
                        failures=decision.failures,
                        reason=reason,
                    )

        def pop_ready_retry(now: float) -> tuple[Job, int] | None:
            """Take the first backoff-expired retry (caller holds the lock)."""
            for i, (ready_at, job, attempt) in enumerate(retry_queue):
                if ready_at <= now:
                    retry_queue.pop(i)
                    return job, attempt
            return None

        def watchdog() -> None:
            """Fail jobs in flight past the policy's wall-clock timeout."""
            assert retry_policy is not None and retry_policy.timeout is not None
            while not stop.wait(min(self.poll_interval, retry_policy.timeout / 4)):
                now = clock()
                if now >= time_limit:
                    return
                with lock:
                    for token, (job, t0, worker_id) in list(in_flight.items()):
                        if now - t0 >= retry_policy.timeout:
                            del in_flight[token]
                            if probes is not None:
                                probes.in_flight.set(float(len(in_flight)))
                            timed_out.add(token)
                            fail_job(
                                job, worker_id, reason="timeout", lost=now - t0, t=now
                            )

        def worker(worker_id: int) -> None:
            was_idle = False
            while not stop.is_set() and clock() < time_limit:
                with lock:
                    if (
                        max_measurements is not None
                        and len(result.measurements) >= max_measurements
                    ):
                        stop.set()
                        return
                    now = clock()
                    ready = pop_ready_retry(now)
                    if ready is not None:
                        job, attempt = ready
                    elif prefetch:
                        # Batched-ahead work takes priority over the is_done
                        # check: these jobs are already journalled/dispatched
                        # from the study's point of view.
                        job = prefetch.popleft()
                        attempt = 1 if faults is None else faults.attempt_number(job)
                    elif study.is_done():
                        if not retry_queue:
                            return
                        job = None  # retries pending but still backing off
                        attempt = 1
                    else:
                        if hub:
                            # The scheduler emits under the backend lock, so
                            # its decision events interleave in dispatch order.
                            hub.set_time(now)
                        if self.ask_batch_size > 1:
                            batch = study.ask_batch(self.ask_batch_size)
                            job = batch[0] if batch else None
                            prefetch.extend(batch[1:])
                        else:
                            job = study.ask()
                        attempt = 1 if faults is None or job is None else faults.attempt_number(job)
                    if job is not None:
                        result.jobs_dispatched += 1
                        store.prepare(job)  # donor snapshot under the lock
                        token = (job.job_id, attempt)
                        in_flight[token] = (job, clock(), worker_id)
                        if probes is not None:
                            probes.dispatches.inc()
                            probes.in_flight.set(float(len(in_flight)))
                if job is None:
                    if hub and not was_idle:
                        # Emit only on the busy -> idle transition, not every
                        # poll, so a rung barrier doesn't flood the stream.
                        hub.emit(EventKind.WORKER_IDLE, time=clock(), worker_id=worker_id)
                    was_idle = True
                    _time.sleep(self.poll_interval)
                    continue
                was_idle = False
                t0 = clock()
                if hub:
                    extra = {"attempt": attempt} if attempt > 1 else {}
                    hub.emit(
                        EventKind.JOB_STARTED,
                        time=t0,
                        trial_id=job.trial_id,
                        job_id=job.job_id,
                        worker_id=worker_id,
                        rung=job.rung,
                        bracket=job.bracket,
                        resource=job.resource,
                        checkpoint_resource=job.checkpoint_resource,
                        **extra,
                    )
                error: str | None = None
                try:
                    # Real training happens outside the lock; the store method
                    # both trains and persists the checkpoint, so serialise the
                    # (cheap) checkpoint lookup/update inside `run_job` itself
                    # by holding the lock only around the dict mutation.
                    from_resource, state = store.starting_state(job, objective)
                    state, loss = objective.train(state, job.config, from_resource, job.resource)
                except Exception as exc:  # noqa: BLE001 — any training crash forfeits
                    error = repr(exc)
                t1 = clock()
                with lock:
                    busy_time[0] += t1 - t0
                    if token in timed_out:
                        # The watchdog already failed this dispatch and
                        # released the scheduler; the late result is stale.
                        timed_out.discard(token)
                        store.discard(job)
                        continue
                    in_flight.pop(token, None)
                    if probes is not None:
                        probes.collects.inc()
                        probes.in_flight.set(float(len(in_flight)))
                    if error is not None:
                        store.discard(job)
                        fail_job(
                            job,
                            worker_id,
                            reason="exception",
                            lost=t1 - t0,
                            t=t1,
                            error=error,
                        )
                    else:
                        if faults is not None:
                            faults.record_success(job)
                        store.put(job.trial_id, job.resource, state)
                        record_report(result, study, job, loss, t1, done_resource)
                        if hub:
                            hub.emit(
                                EventKind.REPORT,
                                time=t1,
                                trial_id=job.trial_id,
                                job_id=job.job_id,
                                worker_id=worker_id,
                                rung=job.rung,
                                bracket=job.bracket,
                                loss=loss,
                                resource=job.resource,
                                busy=t1 - t0,
                            )

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(self.num_workers)
        ]
        if retry_policy is not None and retry_policy.timeout is not None:
            threads.append(threading.Thread(target=watchdog, daemon=True))
        for t in threads:
            t.start()
        # All joins share one deadline: the run may not take longer than
        # time_limit (plus the grace window below) no matter how many workers
        # there are.  The stop flag is raised before the grace joins so that
        # pollers exit instead of sleeping through their next poll.
        deadline = start + time_limit
        for t in threads:
            t.join(timeout=max(deadline - _time.monotonic(), 0.0))
        stop.set()
        grace_deadline = _time.monotonic() + self.shutdown_grace
        for t in threads:
            t.join(timeout=max(grace_deadline - _time.monotonic(), 0.0))
        result.elapsed = clock()
        result.utilization = min(busy_time[0] / (self.num_workers * max(result.elapsed, 1e-9)), 1.0)
        study.finalize()  # journal durability: flush + fsync
        if hub:
            result.telemetry = hub.finalize(
                elapsed=max(result.elapsed, 1e-9), num_workers=self.num_workers
            )
        if tracer is not None:
            result.trace = tracer.build()
        return result

    def run_many(
        self,
        tasks: "list[tuple[Scheduler | Study, Objective]]",
        *,
        time_limit: float,
        max_resource: float | None = None,
        max_measurements: int | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> list[BackendResult]:
        """Drive many studies through one shared worker pool.

        The multiplexed sibling of :meth:`run`: ``tasks`` is a list of
        ``(scheduler_or_study, objective)`` pairs, and the pool's workers
        round-robin their asks across every study that still has work —
        one process, one set of threads, N concurrent searches.  A study
        whose scheduler is momentarily starved (rung barrier) simply cedes
        its turn instead of parking a dedicated worker in a poll loop,
        which is the whole point: worker threads are shared capacity, not
        per-study property.

        Semantics per study match :meth:`run`: asks/reports happen under
        the backend lock against that study (journal-backed studies
        journal exactly their own interactions — a study's journal is
        byte-equivalent in *content* to a solo run, though wall-clock
        timings naturally differ); ``retry_policy`` gives each study its
        own :class:`FaultManager` with wall-clock backoff; telemetry hubs
        attached to individual studies receive only their study's events,
        stamped with the shared run clock.  ``ask_batch_size > 1`` keeps a
        per-study prefetch queue.

        Wall-clock timeouts (``retry_policy.timeout``) are not enforced
        here — use solo :meth:`run` when a watchdog is needed.

        Each study's :attr:`BackendResult.utilization` is its share of the
        *pool's* capacity (busy time over ``num_workers x elapsed``), so
        the values sum to at most 1 across studies.

        Returns per-study results in task order.
        """
        if time_limit <= 0:
            raise ValueError(f"time_limit must be positive, got {time_limit}")
        if not tasks:
            raise ValueError("no tasks given")
        if retry_policy is not None and retry_policy.timeout is not None:
            raise ValueError(
                "retry_policy.timeout (wall-clock watchdog) is not supported by "
                "run_many; use run() for watchdog enforcement"
            )
        probes = backend_probes("threads")

        class _TaskState:
            __slots__ = (
                "study",
                "objective",
                "done_resource",
                "store",
                "result",
                "hub",
                "faults",
                "prefetch",
                "retry_queue",
                "busy",
                "capped",
            )

            def __init__(self, scheduler, objective) -> None:
                self.study = (
                    scheduler if isinstance(scheduler, Study) else Study(scheduler)
                )
                self.objective = objective
                self.done_resource = (
                    max_resource if max_resource is not None else objective.max_resource
                )
                self.store = CheckpointStore()
                self.result = BackendResult()
                self.hub = self.study.telemetry
                self.store.telemetry = self.hub
                self.store.seed_from_trials(self.study.trials)
                self.faults = (
                    FaultManager(retry_policy) if retry_policy is not None else None
                )
                self.prefetch: deque[Job] = deque()
                self.retry_queue: list[tuple[float, Job, int]] = []
                self.busy = 0.0
                self.capped = False

            def exhausted(self) -> bool:
                """No dispatchable work and none coming from the scheduler."""
                if self.capped:
                    return not self.retry_queue
                return (
                    not self.prefetch
                    and not self.retry_queue
                    and self.study.is_done()
                )

        states = [_TaskState(scheduler, objective) for scheduler, objective in tasks]
        lock = threading.Lock()
        stop = threading.Event()
        start = _time.monotonic()
        rr = [0]  # shared round-robin cursor, advanced under the lock

        def clock() -> float:
            return _time.monotonic() - start

        def fail_job(
            ts: "_TaskState",
            job: Job,
            worker_id: int | None,
            *,
            reason: str,
            lost: float,
            t: float,
            error: str | None = None,
        ) -> None:
            """Route one failed attempt for ``ts`` (caller holds the lock)."""
            result = ts.result
            study = ts.study
            hub = ts.hub
            faults = ts.faults
            result.failures.append((t, job.trial_id))
            result.time_lost_to_failures += lost
            extra: dict[str, object] = {}
            if error is not None:
                extra["error"] = error
            if hub:
                hub.set_time(t)
            if faults is None:
                study.on_job_failed(job)
                result.failure_log.append(
                    FailureRecord(
                        time=t,
                        trial_id=job.trial_id,
                        job_id=job.job_id,
                        reason=reason,
                        action="forfeited",
                        error=error,
                        lost=lost,
                    )
                )
                if hub:
                    hub.emit(
                        EventKind.JOB_FAILED,
                        time=t,
                        trial_id=job.trial_id,
                        job_id=job.job_id,
                        worker_id=worker_id,
                        rung=job.rung,
                        bracket=job.bracket,
                        reason=reason,
                        busy=lost,
                        **extra,
                    )
                return
            decision = faults.record_failure(job, reason=reason, lost=lost)
            result.failure_log.append(
                FailureRecord(
                    time=t,
                    trial_id=job.trial_id,
                    job_id=job.job_id,
                    reason=reason,
                    action="retried" if decision.retry else "abandoned",
                    attempt=decision.failures,
                    error=error,
                    lost=lost,
                )
            )
            if hub:
                hub.emit(
                    EventKind.JOB_FAILED,
                    time=t,
                    trial_id=job.trial_id,
                    job_id=job.job_id,
                    worker_id=worker_id,
                    rung=job.rung,
                    bracket=job.bracket,
                    reason=reason,
                    attempt=decision.failures,
                    lost=lost,
                    busy=lost,
                    **extra,
                )
            if decision.retry:
                result.jobs_retried += 1
                study.on_job_requeued(job)
                if hub:
                    hub.emit(
                        EventKind.JOB_RETRIED,
                        time=t,
                        trial_id=job.trial_id,
                        job_id=job.job_id,
                        rung=job.rung,
                        bracket=job.bracket,
                        attempt=decision.failures + 1,
                        delay=decision.delay,
                        retry_at=t + decision.delay,
                    )
                ts.retry_queue.append((t + decision.delay, job, decision.failures + 1))
                if probes is not None:
                    probes.retries.inc()
            else:
                result.trials_abandoned += 1
                study.on_trial_abandoned(job)
                if hub:
                    hub.emit(
                        EventKind.TRIAL_ABANDONED,
                        time=t,
                        trial_id=job.trial_id,
                        job_id=job.job_id,
                        rung=job.rung,
                        bracket=job.bracket,
                        failures=decision.failures,
                        reason=reason,
                    )

        def take_job(ts: "_TaskState", now: float) -> tuple[Job, int] | None:
            """One dispatchable job from ``ts``, or None (caller holds the lock)."""
            if (
                max_measurements is not None
                and len(ts.result.measurements) >= max_measurements
            ):
                ts.capped = True
            for i, (ready_at, job, attempt) in enumerate(ts.retry_queue):
                if ready_at <= now:
                    ts.retry_queue.pop(i)
                    return job, attempt
            if ts.capped:
                return None
            if ts.prefetch:
                job = ts.prefetch.popleft()
            elif ts.study.is_done():
                return None
            else:
                if ts.hub:
                    ts.hub.set_time(now)
                if self.ask_batch_size > 1:
                    batch = ts.study.ask_batch(self.ask_batch_size)
                    job = batch[0] if batch else None
                    ts.prefetch.extend(batch[1:])
                else:
                    job = ts.study.ask()
                if job is None:
                    return None
            attempt = 1 if ts.faults is None else ts.faults.attempt_number(job)
            return job, attempt

        def worker(worker_id: int) -> None:
            was_idle = False
            while not stop.is_set() and clock() < time_limit:
                ts = None
                job = None
                attempt = 1
                with lock:
                    now = clock()
                    n = len(states)
                    for k in range(n):
                        cand = states[(rr[0] + k) % n]
                        taken = take_job(cand, now)
                        if taken is not None:
                            ts = cand
                            job, attempt = taken
                            # Next worker starts at the study after this one.
                            rr[0] = (rr[0] + k + 1) % n
                            break
                    if job is None and all(s.exhausted() for s in states):
                        return
                    if job is not None:
                        ts.result.jobs_dispatched += 1
                        ts.store.prepare(job)
                        if probes is not None:
                            probes.dispatches.inc()
                if job is None:
                    if not was_idle:
                        now = clock()
                        for s in states:
                            if s.hub:
                                s.hub.emit(
                                    EventKind.WORKER_IDLE, time=now, worker_id=worker_id
                                )
                    was_idle = True
                    _time.sleep(self.poll_interval)
                    continue
                was_idle = False
                t0 = clock()
                if ts.hub:
                    extra = {"attempt": attempt} if attempt > 1 else {}
                    ts.hub.emit(
                        EventKind.JOB_STARTED,
                        time=t0,
                        trial_id=job.trial_id,
                        job_id=job.job_id,
                        worker_id=worker_id,
                        rung=job.rung,
                        bracket=job.bracket,
                        resource=job.resource,
                        checkpoint_resource=job.checkpoint_resource,
                        **extra,
                    )
                error: str | None = None
                try:
                    from_resource, state = ts.store.starting_state(job, ts.objective)
                    state, loss = ts.objective.train(
                        state, job.config, from_resource, job.resource
                    )
                except Exception as exc:  # noqa: BLE001 — any training crash forfeits
                    error = repr(exc)
                t1 = clock()
                with lock:
                    ts.busy += t1 - t0
                    if probes is not None:
                        probes.collects.inc()
                    if error is not None:
                        ts.store.discard(job)
                        fail_job(
                            ts,
                            job,
                            worker_id,
                            reason="exception",
                            lost=t1 - t0,
                            t=t1,
                            error=error,
                        )
                    else:
                        if ts.faults is not None:
                            ts.faults.record_success(job)
                        ts.store.put(job.trial_id, job.resource, state)
                        record_report(ts.result, ts.study, job, loss, t1, ts.done_resource)
                        if ts.hub:
                            ts.hub.emit(
                                EventKind.REPORT,
                                time=t1,
                                trial_id=job.trial_id,
                                job_id=job.job_id,
                                worker_id=worker_id,
                                rung=job.rung,
                                bracket=job.bracket,
                                loss=loss,
                                resource=job.resource,
                                busy=t1 - t0,
                            )

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(self.num_workers)
        ]
        for t in threads:
            t.start()
        deadline = start + time_limit
        for t in threads:
            t.join(timeout=max(deadline - _time.monotonic(), 0.0))
        stop.set()
        grace_deadline = _time.monotonic() + self.shutdown_grace
        for t in threads:
            t.join(timeout=max(grace_deadline - _time.monotonic(), 0.0))
        elapsed = clock()
        results = []
        for ts in states:
            ts.result.elapsed = elapsed
            ts.result.utilization = min(
                ts.busy / (self.num_workers * max(elapsed, 1e-9)), 1.0
            )
            ts.study.finalize()
            if ts.hub:
                ts.result.telemetry = ts.hub.finalize(
                    elapsed=max(elapsed, 1e-9), num_workers=self.num_workers
                )
            results.append(ts.result)
        return results
