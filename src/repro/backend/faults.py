"""Fault tolerance: retry policies, job deadlines, and failure injection.

The paper's core systems claim is that ASHA stays effective on clusters with
stragglers and dropped jobs (Section 3.2, Appendix A.1).  Out of the box the
backends treat every failure as a permanent forfeit: the job's trial is
handed to ``Scheduler.on_job_failed`` and never tried again.  Real
schedulers in this space (Syne Tune, Hyper-Tune) ship retry/timeout
machinery as a first-class layer, and this module is ours — shared by
:class:`~repro.backend.simulation.SimulatedCluster` and
:class:`~repro.backend.threaded.ThreadPoolBackend`:

* :class:`RetryPolicy` — how many times a trial may fail before it is
  quarantined, how long to back off between attempts (in *backend* time:
  simulated units or wall-clock seconds), and an optional per-job deadline;
* :class:`FaultManager` — the per-run bookkeeping both backends drive:
  consecutive-failure counts, retry/abandon dispositions, wasted-time
  accounting;
* :class:`FailureInjectingObjective` — a seeded wrapper that makes any
  objective crash or hang on demand, so the whole layer is testable
  end-to-end without real flaky hardware.

A retried job re-enters exactly the rung it left: the backend re-dispatches
the *same* :class:`~repro.core.types.Job` (same target resource, rung and
bracket), notifying the scheduler through
:meth:`~repro.core.scheduler.Scheduler.on_job_requeued` — distinct from the
forfeit path.  Only when the retry budget is exhausted does the trial reach
:meth:`~repro.core.scheduler.Scheduler.on_trial_abandoned` and a terminal
``trial_abandoned`` telemetry event.
"""

from __future__ import annotations

import math
import threading
import time as _time
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..core.types import Config, Job
from ..objectives.base import Objective

__all__ = [
    "RetryPolicy",
    "FaultDecision",
    "FaultManager",
    "InjectedFailure",
    "FailureInjectingObjective",
]


@dataclass(frozen=True)
class RetryPolicy:
    """How a backend responds to failed, dropped, or timed-out jobs.

    Parameters
    ----------
    max_attempts:
        Total attempts a trial gets before it is quarantined, counted over
        *consecutive* failures — a successful report resets the count, so a
        long-lived trial that occasionally hits a transient drop is never
        starved, while a poison trial is abandoned after ``max_attempts``
        failures in a row.  ``1`` means "never retry": the first failure
        abandons the trial.
    backoff:
        Delay before the first re-dispatch, in backend time units (simulated
        time under the cluster simulator, seconds under the thread pool).
        ``0`` (default) retries as soon as a worker is free.
    backoff_factor:
        Exponential multiplier applied per additional consecutive failure:
        the ``n``-th retry waits ``backoff * backoff_factor**(n - 1)``.
    max_backoff:
        Upper clamp on any single backoff delay.
    timeout_factor:
        Simulator-only deadline: a dispatched job is killed once it has run
        for ``timeout_factor`` times its *expected* cost (the objective's
        nominal cost model, before straggler stretching or injected hangs).
        ``None`` disables simulated deadlines.
    timeout:
        Thread-pool deadline in wall-clock seconds per dispatched job.
        Python threads cannot be preempted, so a timed-out job's worker
        stays busy until ``train`` returns — but the scheduler is released
        immediately: the result is discarded and the job becomes eligible
        for retry on another worker.  ``None`` disables wall-clock deadlines.
    retry_timeouts:
        Whether timed-out jobs are eligible for retry (default) or abandon
        their trial on the first deadline kill.
    """

    max_attempts: int = 3
    backoff: float = 0.0
    backoff_factor: float = 2.0
    max_backoff: float = math.inf
    timeout_factor: float | None = None
    timeout: float | None = None
    retry_timeouts: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")
        if self.backoff_factor < 1:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.max_backoff < 0:
            raise ValueError(f"max_backoff must be >= 0, got {self.max_backoff}")
        if self.timeout_factor is not None and self.timeout_factor <= 0:
            raise ValueError(f"timeout_factor must be positive, got {self.timeout_factor}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")

    def backoff_for(self, failures: int) -> float:
        """Delay before re-dispatch after ``failures`` consecutive failures."""
        if failures < 1:
            raise ValueError(f"failures must be >= 1, got {failures}")
        if self.backoff <= 0:
            return 0.0
        return min(self.backoff * self.backoff_factor ** (failures - 1), self.max_backoff)

    def sim_deadline(self, expected_cost: float) -> float | None:
        """Simulated-time kill deadline for a job of ``expected_cost``."""
        if self.timeout_factor is None:
            return None
        return self.timeout_factor * max(expected_cost, 1e-9)


@dataclass(frozen=True)
class FaultDecision:
    """What the backend should do about one failed job."""

    #: ``"retry"`` or ``"abandon"``.
    action: str
    #: Consecutive failures of this trial, including the one just recorded.
    failures: int
    #: Backend-time delay before re-dispatch (retries only).
    delay: float = 0.0

    @property
    def retry(self) -> bool:
        return self.action == "retry"


class FaultManager:
    """Per-run retry bookkeeping shared by the execution backends.

    The manager only *decides*; backends own dispatch, worker accounting and
    telemetry emission, because those are where the clocks live.  All state
    is keyed by trial id so a retried job (same ``job_id``) and a fresh job
    for the same trial share one failure budget.
    """

    def __init__(self, policy: RetryPolicy):
        self.policy = policy
        #: Consecutive failures per trial (reset on success).
        self.failures: dict[int, int] = {}
        #: Trials quarantined for good.
        self.abandoned: set[int] = set()
        #: Retries granted so far.
        self.retries = 0
        #: Backend time spent on attempts that failed.
        self.time_lost = 0.0

    def attempt_number(self, job: Job) -> int:
        """1-based attempt number the next dispatch of ``job`` would be."""
        return self.failures.get(job.trial_id, 0) + 1

    def record_success(self, job: Job) -> None:
        """A job completed: reset its trial's consecutive-failure count."""
        self.failures.pop(job.trial_id, None)

    def record_failure(self, job: Job, *, reason: str, lost: float = 0.0) -> FaultDecision:
        """Record one failure and decide between retry and quarantine."""
        self.time_lost += max(lost, 0.0)
        count = self.failures.get(job.trial_id, 0) + 1
        self.failures[job.trial_id] = count
        retryable = reason != "timeout" or self.policy.retry_timeouts
        if count >= self.policy.max_attempts or not retryable or (
            job.trial_id in self.abandoned
        ):
            self.abandoned.add(job.trial_id)
            return FaultDecision(action="abandon", failures=count)
        self.retries += 1
        return FaultDecision(
            action="retry", failures=count, delay=self.policy.backoff_for(count)
        )


class InjectedFailure(RuntimeError):
    """The exception :class:`FailureInjectingObjective` raises on purpose."""


class FailureInjectingObjective(Objective):
    """Wrap an objective with seeded, deterministic crash/hang injection.

    Faults are keyed per *configuration* (each trial has a distinct sampled
    config, and a trial's jobs all share one config object), so "fail the
    first two attempts of this trial, then succeed" is expressible without
    the objective knowing about trial ids:

    * ``crash_first`` — the first ``n`` training calls for each targeted
      config raise :class:`InjectedFailure`, later ones succeed;
    * ``crash_probability`` — each training call of a targeted config
      additionally crashes with this probability (seeded RNG);
    * ``hang_first`` / ``hang_probability`` — same selection, but the job
      *hangs* instead of crashing: under the simulator the job's cost is
      inflated by ``hang_duration`` simulated units (so its completion event
      slides past any deadline), while :meth:`nominal_cost` keeps reporting
      the clean cost deadlines are computed from; under the thread pool,
      ``train`` really sleeps ``hang_duration`` seconds when ``real_sleep``
      is set (keep it small in tests).
    * ``target`` — optional ``predicate(config) -> bool`` restricting
      injection to matching configurations (by default every config is
      eligible).

    Thread-safe; the injection RNG is consumed in call order, so simulated
    runs remain fully deterministic.
    """

    #: The injection RNG and per-config call counters live in the master
    #: process; forked copies would diverge, so the process-pool backend
    #: must train this objective inline.
    process_safe = False

    def __init__(
        self,
        inner: Objective,
        *,
        seed: int = 0,
        crash_first: int = 0,
        crash_probability: float = 0.0,
        hang_first: int = 0,
        hang_probability: float = 0.0,
        hang_duration: float = 1e9,
        real_sleep: bool = False,
        target: Callable[[Config], bool] | None = None,
    ):
        if not 0 <= crash_probability <= 1 or not 0 <= hang_probability <= 1:
            raise ValueError("crash/hang probabilities must be in [0, 1]")
        if crash_first < 0 or hang_first < 0:
            raise ValueError("crash_first and hang_first must be >= 0")
        if hang_duration <= 0:
            raise ValueError(f"hang_duration must be positive, got {hang_duration}")
        self.inner = inner
        self.space = inner.space
        self.max_resource = inner.max_resource
        self.crash_first = crash_first
        self.crash_probability = crash_probability
        self.hang_first = hang_first
        self.hang_probability = hang_probability
        self.hang_duration = hang_duration
        self.real_sleep = real_sleep
        self.target = target
        self._rng = np.random.default_rng(seed)
        self._train_calls: dict[tuple, int] = {}
        self._cost_calls: dict[tuple, int] = {}
        self._lock = threading.Lock()
        #: Injected crashes / hangs so far (for test assertions).
        self.crashes_injected = 0
        self.hangs_injected = 0

    # ------------------------------------------------------------ selection

    @staticmethod
    def _key(config: Config) -> tuple:
        return tuple(sorted((k, repr(v)) for k, v in config.items()))

    def _targeted(self, config: Config) -> bool:
        return self.target is None or bool(self.target(config))

    def _should_hang(self, config: Config) -> bool:
        if not self._targeted(config):
            return False
        with self._lock:
            key = self._key(config)
            call = self._cost_calls.get(key, 0) + 1
            self._cost_calls[key] = call
            if call <= self.hang_first or (
                self.hang_probability > 0 and self._rng.random() < self.hang_probability
            ):
                self.hangs_injected += 1
                return True
        return False

    def _should_crash(self, config: Config) -> bool:
        if not self._targeted(config):
            return False
        with self._lock:
            key = self._key(config)
            call = self._train_calls.get(key, 0) + 1
            self._train_calls[key] = call
            if call <= self.crash_first or (
                self.crash_probability > 0 and self._rng.random() < self.crash_probability
            ):
                self.crashes_injected += 1
                return True
        return False

    # ------------------------------------------------------------ protocol

    def initial_state(self, config: Config) -> Any:
        return self.inner.initial_state(config)

    def train(
        self, state: Any, config: Config, from_resource: float, to_resource: float
    ) -> tuple[Any, float]:
        if self.real_sleep and self._should_hang(config):
            # Thread-pool semantics: the worker really stalls — long enough
            # to trip a wall-clock deadline — then training proceeds (the
            # watchdog will already have discarded the result if it fired).
            _time.sleep(self.hang_duration)
        if self._should_crash(config):
            raise InjectedFailure(
                f"injected crash (training call "
                f"{self._train_calls[self._key(config)]}) for config {config!r}"
            )
        return self.inner.train(state, config, from_resource, to_resource)

    def cost(self, config: Config, from_resource: float, to_resource: float) -> float:
        base = self.inner.cost(config, from_resource, to_resource)
        if not self.real_sleep and self._should_hang(config):
            # Simulator semantics: the completion event slides out by
            # ``hang_duration`` simulated units while ``nominal_cost`` (and
            # therefore any deadline) keeps seeing the clean cost model.
            return base + self.hang_duration
        return base

    def nominal_cost(self, config: Config, from_resource: float, to_resource: float) -> float:
        """The clean cost model — what deadlines are computed from."""
        return self.inner.cost(config, from_resource, to_resource)

    def cost_multiplier(self, config: Config) -> float:
        return self.inner.cost_multiplier(config)
