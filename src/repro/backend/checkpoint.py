"""Checkpoint store: per-trial training state shared by the backends.

Section 3.2 notes that "when training is iterative, ASHA can return an
answer in time(R), since incrementally trained configurations can be
checkpointed and resumed."  The store maps a trial id to its latest
``(resource, state)`` pair and implements the three resume semantics jobs
can request:

* resume from the trial's own checkpoint (``job.checkpoint_resource > 0``);
* start from scratch (``checkpoint_resource == 0``);
* inherit another trial's checkpoint (``job.inherit_from`` — PBT's exploit).
"""

from __future__ import annotations

import copy
from typing import Any

from ..core.types import Job
from ..objectives.base import Objective
from ..telemetry import NULL_HUB, EventKind

__all__ = ["CheckpointStore"]


class _ReplayedState:
    """Placeholder checkpoint for a trial whose training was skipped.

    Journal replay (:meth:`repro.study.Study.resume`) takes losses from the
    journal instead of re-training, so the store holds just enough here —
    the config and the resource trained to — for
    :meth:`CheckpointStore.materialize` to rebuild the real state lazily if
    a post-journal job ever resumes from it.
    """

    __slots__ = ("config", "resource")

    def __init__(self, config: Any, resource: float):
        self.config = config
        self.resource = resource

    def __repr__(self) -> str:
        return f"_ReplayedState(resource={self.resource!r})"


class CheckpointStore:
    """In-memory map of trial id -> (resource, opaque training state)."""

    def __init__(self) -> None:
        self._store: dict[int, tuple[float, Any]] = {}
        # Donor-state snapshots taken at dispatch time, keyed by job id: PBT
        # copies weights when the exploit job launches, and the donor may
        # train further before the clone's job completes.
        self._snapshots: dict[int, tuple[float, Any]] = {}
        #: Lifecycle-event hub; backends attach theirs so checkpoint resumes
        #: are observable (``checkpoint_restored`` events).
        self.telemetry = NULL_HUB

    def __contains__(self, trial_id: int) -> bool:
        return trial_id in self._store

    def __len__(self) -> int:
        return len(self._store)

    def resource_of(self, trial_id: int) -> float:
        return self._store[trial_id][0]

    def prepare(self, job: Job) -> None:
        """Snapshot donor state at dispatch (call before the job starts).

        Only meaningful for inheriting jobs; a no-op otherwise.  Backends
        call this when the job is handed to a worker so that the clone copies
        the donor's weights *as of the exploit decision*, not as of whenever
        the clone's training happens to finish.
        """
        if job.inherit_from is None:
            return
        if job.inherit_from not in self._store:
            raise KeyError(
                f"job {job.job_id} inherits from trial {job.inherit_from}, "
                "which has no checkpoint"
            )
        resource, state = self._store[job.inherit_from]
        self._snapshots[job.job_id] = (resource, copy.deepcopy(state))

    def resolve_start(
        self, job: Job, objective: Objective
    ) -> tuple[float, Any, dict[str, Any] | None]:
        """Resolve a job's starting point without emitting telemetry.

        Returns ``(resource, state, restore_event)`` where ``restore_event``
        is the ``checkpoint_restored`` payload the caller should emit (or
        ``None`` for a from-scratch start).  The split exists for backends
        that resolve training inputs at *dispatch* but must emit the restore
        event at *completion* to keep the stream byte-identical to the
        inline path (see :class:`~repro.backend.process_pool
        .ProcessPoolBackend`); :meth:`starting_state` is the
        resolve-and-emit-now composition.
        """
        if job.inherit_from is not None:
            snapshot = self._snapshots.pop(job.job_id, None)
            if snapshot is None:
                if job.inherit_from not in self._store:
                    raise KeyError(
                        f"job {job.job_id} inherits from trial {job.inherit_from}, "
                        "which has no checkpoint"
                    )
                resource, state = self._store[job.inherit_from]
                snapshot = (resource, copy.deepcopy(state))
            event = dict(
                trial_id=job.trial_id,
                job_id=job.job_id,
                resource=snapshot[0],
                inherited_from=job.inherit_from,
            )
            return snapshot[0], snapshot[1], event
        if job.checkpoint_resource > 0:
            if job.trial_id not in self._store:
                raise KeyError(
                    f"job {job.job_id} resumes trial {job.trial_id} at resource "
                    f"{job.checkpoint_resource}, but no checkpoint exists"
                )
            resource, state = self._store[job.trial_id]
            event = dict(trial_id=job.trial_id, job_id=job.job_id, resource=resource)
            return resource, state, event
        return 0.0, objective.initial_state(job.config), None

    def emit_restore(self, event: dict[str, Any] | None) -> None:
        """Emit a deferred ``checkpoint_restored`` payload from :meth:`resolve_start`."""
        if event is not None and self.telemetry:
            self.telemetry.emit(EventKind.CHECKPOINT_RESTORED, **event)

    def starting_state(self, job: Job, objective: Objective) -> tuple[float, Any]:
        """Resolve the (resource, state) a job should begin training from.

        Emits a ``checkpoint_restored`` telemetry event whenever the job
        resumes existing state (its own checkpoint or an inherited one)
        rather than initialising from scratch.
        """
        resource, state, event = self.resolve_start(job, objective)
        self.emit_restore(event)
        return resource, self.materialize(state, objective)

    def materialize(self, state: Any, objective: Objective) -> Any:
        """Turn a replay placeholder into real training state (identity otherwise).

        Objectives are deterministic functions of ``(config, resource)`` —
        the checkpoint-equivalence contract — so retraining from scratch up
        to the placeholder's resource reproduces exactly the state the
        skipped training would have produced.
        """
        if not isinstance(state, _ReplayedState):
            return state
        real = objective.initial_state(state.config)
        if state.resource > 0:
            real, _ = objective.train(real, state.config, 0.0, state.resource)
        return real

    def replay_complete(self, job: Job) -> dict[str, Any] | None:
        """Bookkeeping for a job whose loss came from a journal.

        Mirrors :meth:`resolve_start`'s restore-event computation without
        touching the objective (no ``initial_state``, no training), then
        installs a :class:`_ReplayedState` placeholder as the trial's
        checkpoint.  Returns the deferred ``checkpoint_restored`` payload
        the caller should emit (``None`` for a from-scratch job), keeping
        the telemetry stream byte-identical to a live run's.
        """
        if job.inherit_from is not None:
            snapshot = self._snapshots.pop(job.job_id, None)
            if snapshot is None:
                if job.inherit_from not in self._store:
                    raise KeyError(
                        f"job {job.job_id} inherits from trial {job.inherit_from}, "
                        "which has no checkpoint"
                    )
                snapshot = self._store[job.inherit_from]
            event: dict[str, Any] | None = dict(
                trial_id=job.trial_id,
                job_id=job.job_id,
                resource=snapshot[0],
                inherited_from=job.inherit_from,
            )
        elif job.checkpoint_resource > 0:
            if job.trial_id not in self._store:
                raise KeyError(
                    f"job {job.job_id} resumes trial {job.trial_id} at resource "
                    f"{job.checkpoint_resource}, but no checkpoint exists"
                )
            event = dict(
                trial_id=job.trial_id, job_id=job.job_id, resource=self._store[job.trial_id][0]
            )
        else:
            event = None
        self.replay_placeholder(job)
        return event

    def replay_placeholder(self, job: Job) -> None:
        """Install the lazy placeholder checkpoint for a journal-replayed job."""
        self._store[job.trial_id] = (job.resource, _ReplayedState(job.config, job.resource))

    def seed_from_trials(self, trials: dict[int, Any]) -> None:
        """Install placeholder checkpoints for already-measured trials.

        A restored study's scheduler remembers its trials, but a fresh
        backend's store is empty — jobs promoting those trials would find no
        checkpoint.  Placeholders at each trial's furthest measured resource
        let :meth:`materialize` rebuild the real state lazily on first use.
        A no-op for fresh studies (no trials yet) and for replay-mode resume
        (which re-executes from t=0 and installs placeholders as it goes).
        """
        for trial in trials.values():
            if trial.measurements and trial.trial_id not in self._store:
                resource = max(m.resource for m in trial.measurements)
                self._store[trial.trial_id] = (resource, _ReplayedState(trial.config, resource))

    def put(self, trial_id: int, resource: float, state: Any) -> None:
        """Persist ``trial_id``'s checkpoint: trained to ``resource``, ``state``.

        The public write path — backends that train outside the store (the
        thread pool) use this instead of reaching into the internal dict.
        """
        if resource < 0:
            raise ValueError(f"checkpoint resource must be >= 0, got {resource}")
        self._store[trial_id] = (resource, state)

    def run_job(self, job: Job, objective: Objective) -> float:
        """Execute a job's training increment and persist the new checkpoint.

        Returns the validation loss at ``job.resource``.
        """
        from_resource, state = self.starting_state(job, objective)
        state, loss = objective.train(state, job.config, from_resource, job.resource)
        self.put(job.trial_id, job.resource, state)
        return loss

    def start_resource(self, job: Job) -> float:
        """The resource a job's training would begin from right now."""
        if job.inherit_from is not None:
            if job.job_id in self._snapshots:
                return self._snapshots[job.job_id][0]
            if job.inherit_from in self._store:
                return self._store[job.inherit_from][0]
        return job.checkpoint_resource

    def job_cost(self, job: Job, objective: Objective) -> float:
        """Simulated duration of a job under the objective's cost model."""
        return objective.cost(job.config, self.start_resource(job), job.resource)

    def discard(self, job: Job) -> None:
        """Drop any dispatch snapshot for a job that will never complete."""
        self._snapshots.pop(job.job_id, None)

    def evict(self, trial_id: int) -> None:
        """Drop a trial's checkpoint (memory hygiene for long runs)."""
        self._store.pop(trial_id, None)
