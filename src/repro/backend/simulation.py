"""The simulated distributed cluster the evaluation runs on.

The paper's experiments ran on 16-500 real workers; scheduler behaviour,
however, depends only on the *ordering and timing* of job completions, so a
discrete-event simulation reproduces it exactly (the paper itself evaluates
straggler/drop robustness with simulated workloads in Appendix A.1).  The
simulator models:

* ``num_workers`` identical workers pulling jobs from the scheduler whenever
  they are free;
* **stragglers**: each job's duration is its objective-model cost multiplied
  by ``(1 + |z|)``, ``z ~ N(0, straggler_std)`` — the paper's model;
* **dropped jobs**: "a given p probability that a job will be dropped at
  each time unit", i.e. geometric drop times; a job of duration T survives
  with probability ``(1 - p)**T``;
* **checkpointed resume** through :class:`~repro.backend.checkpoint.CheckpointStore`.

A worker that receives no job stays idle and is re-polled after the next
event — synchronous schedulers therefore waste exactly the worker-time their
rung barriers imply, with no simulation artefacts.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from ..core.scheduler import Scheduler
from ..core.types import Job
from ..objectives.base import Objective
from ..telemetry import EventKind, TelemetryHub
from .checkpoint import CheckpointStore
from .events import EventQueue
from .trial_runner import BackendResult, record_report

__all__ = ["SimulatedCluster"]


class SimulatedCluster:
    """Discrete-event cluster executing one hyperparameter search.

    Parameters
    ----------
    num_workers:
        Parallel workers (1 reproduces the sequential setting of Section 4.1).
    straggler_std:
        Standard deviation of the ``(1 + |z|)`` duration multiplier; 0
        disables stragglers.
    drop_probability:
        Per-time-unit probability a running job is dropped.
    churn_rate:
        Expected worker-failure events per time unit across the cluster:
        at exponential intervals a worker dies — killing its in-flight job
        (reported to the scheduler as a failure) — and rejoins after
        ``churn_downtime``.  0 disables churn.
    churn_downtime:
        How long a churned worker stays away before rejoining.
    seed:
        Seed for the cluster's own randomness (stragglers/drops) — kept
        separate from the scheduler's RNG so the same search can be replayed
        under different failure conditions.
    """

    def __init__(
        self,
        num_workers: int,
        *,
        straggler_std: float = 0.0,
        drop_probability: float = 0.0,
        churn_rate: float = 0.0,
        churn_downtime: float = 0.0,
        seed: int = 0,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if straggler_std < 0:
            raise ValueError(f"straggler_std must be >= 0, got {straggler_std}")
        if not 0 <= drop_probability < 1:
            raise ValueError(f"drop_probability must be in [0, 1), got {drop_probability}")
        if churn_rate < 0 or churn_downtime < 0:
            raise ValueError("churn_rate and churn_downtime must be >= 0")
        self.num_workers = num_workers
        self.straggler_std = straggler_std
        self.drop_probability = drop_probability
        self.churn_rate = churn_rate
        self.churn_downtime = churn_downtime
        self.rng = np.random.default_rng(seed)

    # ----------------------------------------------------------------- run

    def run(
        self,
        scheduler: Scheduler,
        objective: Objective,
        *,
        time_limit: float,
        max_resource: float | None = None,
        max_measurements: int | None = None,
        stop_on_first_completion: bool = False,
        telemetry: TelemetryHub | None = None,
    ) -> BackendResult:
        """Drive ``scheduler`` against ``objective`` until the clock runs out.

        Parameters
        ----------
        time_limit:
            Simulated-time budget; jobs finishing after it are discarded.
        max_resource:
            Resource counting as "trained to completion" for the
            :attr:`BackendResult.completions` log (defaults to the
            objective's ``max_resource``).
        max_measurements:
            Optional hard cap on reported results (guards runaway tests).
        stop_on_first_completion:
            End the simulation at the first max-resource completion (the
            Figure 8 "time until first configuration trained for R" metric).
        telemetry:
            Optional :class:`~repro.telemetry.TelemetryHub`; when given it is
            attached to the scheduler and checkpoint store, every lifecycle
            event is emitted with the simulated clock, and the run's
            :class:`~repro.telemetry.MetricsReport` lands on
            :attr:`BackendResult.telemetry`.  Event timestamps are purely
            simulation-driven, so seeded runs emit identical streams.
        """
        if time_limit <= 0:
            raise ValueError(f"time_limit must be positive, got {time_limit}")
        done_resource = max_resource if max_resource is not None else objective.max_resource
        queue = EventQueue()
        store = CheckpointStore()
        result = BackendResult()
        hub = telemetry if telemetry is not None else scheduler.telemetry
        if telemetry is not None:
            scheduler.attach_telemetry(hub)
        store.telemetry = hub
        # Workers have stable identities so telemetry can attribute busy time;
        # the lowest-numbered free worker always takes the next job, which
        # keeps the assignment deterministic.  Churned workers retire their
        # id; rejoining workers get a fresh one.
        free_ids: list[int] = list(range(self.num_workers))
        next_worker_id = self.num_workers
        worker_of_job: dict[int, int] = {}
        busy_time = 0.0
        # In-flight jobs (for churn victims) and jobs whose scheduled
        # completion/drop event must be ignored because churn killed them.
        in_flight: dict[int, Job] = {}
        cancelled: set[int] = set()

        def schedule_churn() -> None:
            if self.churn_rate > 0:
                gap = float(self.rng.exponential(1.0 / self.churn_rate))
                queue.push(queue.clock + gap, "churn", None)

        def try_fill() -> int:
            nonlocal busy_time
            filled = 0
            starved = False
            while free_ids and not scheduler.is_done():
                job = scheduler.next_job()
                if job is None:
                    starved = True
                    break
                worker = heapq.heappop(free_ids)
                filled += 1
                result.jobs_dispatched += 1
                in_flight[job.job_id] = job
                worker_of_job[job.job_id] = worker
                store.prepare(job)  # snapshot donor state for inheriting jobs
                duration = self._duration(store.job_cost(job, objective))
                drop_at = self._drop_time(duration)
                credit = min(drop_at if drop_at is not None else duration,
                             max(time_limit - queue.clock, 0.0))
                busy_time += credit
                if drop_at is not None:
                    queue.push(queue.clock + drop_at, "drop", job)
                else:
                    queue.push(queue.clock + duration, "complete", job)
                if hub:
                    hub.emit(
                        EventKind.JOB_STARTED,
                        trial_id=job.trial_id,
                        job_id=job.job_id,
                        worker_id=worker,
                        rung=job.rung,
                        bracket=job.bracket,
                        resource=job.resource,
                        checkpoint_resource=job.checkpoint_resource,
                        busy_credit=credit,
                    )
            if hub and starved and free_ids:
                hub.emit(EventKind.WORKER_IDLE, free_workers=len(free_ids))
            return filled

        hub.set_time(0.0)
        try_fill()
        schedule_churn()
        while queue:
            next_time = queue.peek_time()
            if next_time is None or next_time > time_limit:
                break
            event = queue.pop()
            hub.set_time(queue.clock)
            if event.kind == "churn":
                if in_flight:
                    # Kill a random busy worker: its job fails.
                    victim_id = list(in_flight)[self.rng.integers(len(in_flight))]
                    victim = in_flight.pop(victim_id)
                    cancelled.add(victim_id)
                    worker = worker_of_job.pop(victim_id, None)  # id retires with the worker
                    store.discard(victim)
                    scheduler.on_job_failed(victim)
                    result.failures.append((queue.clock, victim.trial_id))
                    if hub:
                        hub.emit(
                            EventKind.JOB_FAILED,
                            trial_id=victim.trial_id,
                            job_id=victim.job_id,
                            worker_id=worker,
                            rung=victim.rung,
                            bracket=victim.bracket,
                            reason="churn",
                        )
                elif free_ids:
                    heapq.heappop(free_ids)  # an idle worker goes away instead
                queue.push(queue.clock + max(self.churn_downtime, 1e-9), "rejoin", None)
                schedule_churn()
                try_fill()
                continue
            if event.kind == "rejoin":
                heapq.heappush(free_ids, next_worker_id)
                next_worker_id += 1
                try_fill()
                continue
            job: Job = event.payload
            if job.job_id in cancelled:
                cancelled.discard(job.job_id)
                continue  # the worker already churned away; no worker frees
            in_flight.pop(job.job_id, None)
            worker = worker_of_job.pop(job.job_id, None)
            if worker is not None:
                heapq.heappush(free_ids, worker)
            if event.kind == "complete":
                loss = store.run_job(job, objective)
                record_report(result, scheduler, job, loss, queue.clock, done_resource)
                if hub:
                    hub.emit(
                        EventKind.REPORT,
                        trial_id=job.trial_id,
                        job_id=job.job_id,
                        worker_id=worker,
                        rung=job.rung,
                        bracket=job.bracket,
                        loss=loss,
                        resource=job.resource,
                    )
            else:  # drop
                store.discard(job)
                scheduler.on_job_failed(job)
                result.failures.append((queue.clock, job.trial_id))
                if hub:
                    hub.emit(
                        EventKind.JOB_FAILED,
                        trial_id=job.trial_id,
                        job_id=job.job_id,
                        worker_id=worker,
                        rung=job.rung,
                        bracket=job.bracket,
                        reason="dropped",
                    )
            if max_measurements is not None and len(result.measurements) >= max_measurements:
                break
            if stop_on_first_completion and result.completions:
                break
            try_fill()

        # If we stopped because the next event lies beyond the budget, the
        # search consumed the whole budget; otherwise it drained early.
        result.elapsed = time_limit if queue else min(queue.clock, time_limit)
        horizon = max(result.elapsed, 1e-12)
        result.utilization = min(busy_time / (self.num_workers * horizon), 1.0)
        if hub:
            hub.set_time(result.elapsed)
            result.telemetry = hub.finalize(
                elapsed=result.elapsed, num_workers=self.num_workers
            )
        return result

    # ------------------------------------------------------------ physics

    def _duration(self, cost: float) -> float:
        """Job duration: cost stretched by the straggler multiplier."""
        if cost <= 0:
            return 1e-9  # zero-cost jobs still take an instant, keeping event order sane
        if self.straggler_std == 0:
            return cost
        z = self.rng.normal(0.0, self.straggler_std)
        return cost * (1.0 + abs(z))

    def _drop_time(self, duration: float) -> float | None:
        """Geometric drop time, or ``None`` if the job survives.

        A job running for ``duration`` time units survives with probability
        ``(1 - p)**duration``; conditional on dropping, the drop time is the
        (continuous) geometric first-failure time.
        """
        if self.drop_probability == 0:
            return None
        u = self.rng.random()
        survive = (1.0 - self.drop_probability) ** duration
        if u < survive:
            return None
        # Invert the continuous survival function at u (u >= survive here).
        t = math.log(u) / math.log(1.0 - self.drop_probability)
        return min(max(t, 1e-9), duration)
