"""The simulated distributed cluster the evaluation runs on.

The paper's experiments ran on 16-500 real workers; scheduler behaviour,
however, depends only on the *ordering and timing* of job completions, so a
discrete-event simulation reproduces it exactly (the paper itself evaluates
straggler/drop robustness with simulated workloads in Appendix A.1).  The
simulator models:

* ``num_workers`` identical workers pulling jobs from the scheduler whenever
  they are free;
* **stragglers**: each job's duration is its objective-model cost multiplied
  by ``(1 + |z|)``, ``z ~ N(0, straggler_std)`` — the paper's model;
* **dropped jobs**: "a given p probability that a job will be dropped at
  each time unit", i.e. geometric drop times; a job of duration T survives
  with probability ``(1 - p)**T``;
* **checkpointed resume** through :class:`~repro.backend.checkpoint.CheckpointStore`;
* **fault tolerance** (opt-in): pass a
  :class:`~repro.backend.faults.RetryPolicy` to :meth:`SimulatedCluster.run`
  and failed jobs are re-dispatched with exponential backoff, jobs running
  past ``timeout_factor x`` their nominal cost are killed and retried, and
  trials that keep failing are quarantined instead of poisoning the search.

A worker that receives no job stays idle and is re-polled after the next
event — synchronous schedulers therefore waste exactly the worker-time their
rung barriers imply, with no simulation artefacts.

Since the multiplexer PR the event loop is *steppable*: all per-study state
lives in a :class:`SimRun`, events carry their owning run in the payload,
and :func:`drive_runs` delivers events from one
:class:`~repro.backend.events.EventQueue` to whichever run owns them.
:meth:`SimulatedCluster.run` drives a single run over a private queue —
byte-identical to the historical inline loop — while
:class:`~repro.study.multiplex.StudyMultiplexer` drives thousands of runs
over one shared queue (a shared simulated clock) without changing any
study's observable bytes.
"""

from __future__ import annotations

import gc
import heapq
import math
from collections import deque
from typing import Callable

import numpy as np

from ..core.scheduler import Scheduler
from ..core.types import Job
from ..objectives.base import Objective
from ..study import Study
from ..telemetry import EventKind, TelemetryHub
from ..telemetry.tracing import TraceBuilder
from .checkpoint import CheckpointStore
from .events import EventQueue
from .faults import FaultManager, RetryPolicy
from .trial_runner import BackendResult, FailureRecord, record_report

__all__ = ["SimRun", "SimulatedCluster", "drive_runs"]


class _InlineExecution:
    """The default training-execution strategy: train at the completion event.

    The simulated event loop is deliberately agnostic about *where* a job's
    training increment actually computes.  It drives a small strategy
    object: :meth:`submit` when a job is dispatched, :meth:`collect` when
    its completion event fires (must return the loss and persist the
    checkpoint), :meth:`discard` when a dispatch is killed before
    completing, :meth:`close` when the run ends.  This inline strategy is
    the sequential oracle — everything happens in-process at collect time —
    and :class:`~repro.backend.process_pool.ProcessPoolBackend` swaps in a
    strategy that farms :meth:`~repro.objectives.base.Objective.train` out
    to worker processes while leaving the event loop, clocks, and RNG draw
    sequence untouched.
    """

    def __init__(self, store: CheckpointStore, objective: Objective):
        self.store = store
        self.objective = objective

    def submit(self, job: Job, cached: bool = False) -> None:  # noqa: ARG002 — strategy protocol
        """A job was dispatched; the inline strategy defers all work.

        ``cached`` flags a dispatch whose result the study's journal already
        holds (replay) — irrelevant here since nothing runs until collect.
        """

    def collect(self, job: Job) -> float:
        """Produce the completed job's loss (training happens right here)."""
        return self.store.run_job(job, self.objective)

    def collect_replayed(self, job: Job) -> None:
        """A journal-replayed job completed: bookkeeping only, no training.

        Emits the same ``checkpoint_restored`` event the live path would and
        installs the lazy placeholder checkpoint, keeping the telemetry
        stream and store behaviour byte-identical to an uninterrupted run.
        """
        self.store.emit_restore(self.store.replay_complete(job))

    def discard(self, job: Job) -> None:
        """The dispatch was killed (drop/churn/timeout); nothing is pending."""

    def close(self) -> None:
        """The run ended; nothing to tear down."""


#: Event kinds that reference one in-flight dispatch (and can go stale).
_JOB_EVENT_KINDS = frozenset(("complete", "drop", "timeout"))


class SimRun:
    """One study's complete event-loop state, steppable from outside.

    All the bookkeeping :meth:`SimulatedCluster.run` historically kept in
    closures — free workers, in-flight dispatches, busy-time credits, fault
    routing — lives here, so a driver can interleave *many* runs over one
    shared :class:`~repro.backend.events.EventQueue`.  Every event a run
    pushes carries ``(run, payload)``; :func:`drive_runs` peeks the owner
    and hands the event back to :meth:`dispatch`.

    The run keeps its own ``clock`` (the time of the last event it
    processed) rather than reading the shared queue's: during this run's
    processing the two are equal, and between events other runs advance the
    shared clock without touching this run's accounting — which is what
    keeps a multiplexed study's records byte-identical to a solo run.

    ``fill_cap`` bounds how many jobs one :meth:`fill_round` dispatches, so
    a driver can round-robin fills across runs (the multiplexer's
    fair-share knob); ``None`` fills every free worker in one round, the
    solo behaviour.
    """

    def __init__(
        self,
        cluster: "SimulatedCluster",
        scheduler: Scheduler | Study,
        objective: Objective,
        *,
        queue: EventQueue,
        time_limit: float,
        max_resource: float | None = None,
        max_measurements: int | None = None,
        stop_on_first_completion: bool = False,
        telemetry: TelemetryHub | None = None,
        retry_policy: RetryPolicy | None = None,
        trace: bool = False,
        fill_cap: int | None = None,
    ):
        if time_limit <= 0:
            raise ValueError(f"time_limit must be positive, got {time_limit}")
        if fill_cap is not None and fill_cap < 1:
            raise ValueError(f"fill_cap must be >= 1, got {fill_cap}")
        self.cluster = cluster
        self.queue = queue
        self.objective = objective
        self.time_limit = time_limit
        self.max_measurements = max_measurements
        self.stop_on_first_completion = stop_on_first_completion
        self.fill_cap = fill_cap
        self.done_resource = (
            max_resource if max_resource is not None else objective.max_resource
        )
        self.store = CheckpointStore()
        self.result = BackendResult()
        # The loop drives a Study (ask/tell + fault hooks); a bare scheduler
        # gets an unjournalled wrapper so there is exactly one code path.
        self.study = scheduler if isinstance(scheduler, Study) else Study(scheduler)
        hub = telemetry if telemetry is not None else self.study.telemetry
        self.tracer = None
        if trace:
            self.tracer = TraceBuilder()
            if not hub:
                hub = TelemetryHub()
            hub.add_sink(self.tracer)
        if telemetry is not None or self.tracer is not None:
            self.study.attach_telemetry(hub)
        self.hub = hub
        self.store.telemetry = hub
        # A snapshot-restored study arrives with trials already trained;
        # give their checkpoints lazy placeholders (no-op for fresh runs).
        self.store.seed_from_trials(self.study.trials)
        # Workers have stable identities so telemetry can attribute busy
        # time; the lowest-numbered free worker always takes the next job,
        # which keeps the assignment deterministic.  Churned workers retire
        # their id; rejoining workers get a fresh one.
        self.free_ids: list[int] = list(range(cluster.num_workers))
        self.next_worker_id = cluster.num_workers
        self.worker_of_job: dict[int, int] = {}
        self.busy_time = 0.0
        # In-flight jobs plus per-dispatch bookkeeping.  ``generation``
        # counts dispatches of the same job id (a retried job is re-issued
        # verbatim), so completion/drop/timeout events scheduled for an
        # attempt that was since killed are recognised as stale and ignored.
        self.in_flight: dict[int, Job] = {}
        self.generation: dict[int, int] = {}
        self.dispatched_at: dict[int, float] = {}
        self.credited: dict[int, float] = {}
        # Swap-remove index of live job ids, so churn can pick a uniform
        # random victim in O(1); the victim draw stays a single
        # ``rng.integers(len)`` call per churn event, so the cluster's
        # seeded draw sequence is unchanged.
        self.live_ids: list[int] = []
        self.live_pos: dict[int, int] = {}
        self.faults = FaultManager(retry_policy) if retry_policy is not None else None
        self.retry_policy = retry_policy
        # Duck-typed objectives in tests may not subclass Objective.
        self.nominal_cost = getattr(objective, "nominal_cost", objective.cost)
        self.pending_retries: deque[tuple[Job, int]] = deque()
        # Where training increments actually compute: inline at the
        # completion event for the plain simulator, in worker processes for
        # ProcessPoolBackend.  Closed (pool teardown) when the loop exits.
        self.execution = cluster._make_execution(self.store, objective)
        #: Time of the last event this run processed (== the shared queue
        #: clock while this run's events are being handled).
        self.clock = 0.0
        #: No further events of this run will be processed (budget
        #: exhausted, measurement cap, or first-completion stop); the
        #: driver discards its stale queue entries lazily.
        self.done = False
        self.budget_exhausted = False
        #: Multiplexer probe bundle (repro.telemetry.runtime.MuxProbes) —
        #: installed by StudyMultiplexer.run() when a runtime registry is
        #: live, None otherwise.  ``last_dispatch_tick`` is the shared-clock
        #: tick of this run's most recent dispatch; the starvation-age
        #: gauges are computed from it at scrape time.
        self.obs = None
        self.last_dispatch_tick = 0

    # --------------------------------------------------------- event wiring

    def _push(self, time: float, kind: str, payload=None) -> None:
        """Schedule one of this run's events on the (possibly shared) queue."""
        self.queue.push(time, kind, (self, payload))

    def begin(self) -> None:
        """Zero the telemetry clock; the driver requests the first fill."""
        if self.hub:
            self.hub.set_time(0.0)

    def schedule_churn(self) -> None:
        cluster = self.cluster
        if cluster.churn_rate > 0:
            gap = float(cluster.rng.exponential(1.0 / cluster.churn_rate))
            self._push(self.clock + gap, "churn", None)

    # ------------------------------------------------------------- dispatch

    def launch(self, job: Job, worker: int, attempt: int) -> None:
        cluster = self.cluster
        store = self.store
        gen = self.generation.get(job.job_id, 0) + 1
        self.generation[job.job_id] = gen
        self.in_flight[job.job_id] = job
        self.live_pos[job.job_id] = len(self.live_ids)
        self.live_ids.append(job.job_id)
        self.worker_of_job[job.job_id] = worker
        store.prepare(job)  # snapshot donor state for inheriting jobs
        duration = cluster._duration(store.job_cost(job, self.objective))
        drop_at = cluster._drop_time(duration)
        # Busy time is credited optimistically at dispatch (capped at the
        # remaining budget); kills and early exits roll back the unspent
        # part in ``kill``/``finish``.
        credit = min(
            drop_at if drop_at is not None else duration,
            max(self.time_limit - self.clock, 0.0),
        )
        self.busy_time += credit
        self.dispatched_at[job.job_id] = self.clock
        self.credited[job.job_id] = credit
        if drop_at is not None:
            self._push(self.clock + drop_at, "drop", (job, gen))
        else:
            self._push(self.clock + duration, "complete", (job, gen))
        if self.faults is not None and self.retry_policy is not None:
            deadline = self.retry_policy.sim_deadline(
                self.nominal_cost(job.config, store.start_resource(job), job.resource)
            )
            if deadline is not None:
                self._push(self.clock + deadline, "timeout", (job, gen))
        # Hand the dispatch to the execution strategy *after* duration and
        # deadline are computed: resolving the starting state may consume
        # the dispatch snapshot that ``start_resource`` reads.  A job
        # whose result the journal already holds needs no speculative
        # training (the process pool would otherwise fork for nothing).
        self.execution.submit(job, cached=self.study.has_cached_loss(job.job_id))
        if self.hub:
            extra = {"attempt": attempt} if attempt > 1 else {}
            self.hub.emit(
                EventKind.JOB_STARTED,
                trial_id=job.trial_id,
                job_id=job.job_id,
                worker_id=worker,
                rung=job.rung,
                bracket=job.bracket,
                resource=job.resource,
                checkpoint_resource=job.checkpoint_resource,
                busy_credit=credit,
                **extra,
            )

    def fill_round(self) -> bool:
        """Fill free workers: queued retries first, then (batched) asks.

        Dispatch order is identical to the historical one-ask-per-worker
        loop — retries drain in FIFO order, then the study fills the
        remaining workers.  With no event hub recording, the study sees
        ``ask_batch`` calls instead of one ask per worker, which is where
        the batched promotion scan and journal block append pay off; a
        short batch means the same thing a ``None`` ask did (rung barrier
        or finished).  When a hub *is* attached, dispatch events
        (``job_started``) must interleave with the scheduler's own
        ``trial_started`` emissions in per-job order — ``seq`` is assigned
        at emit time — so the recorded path stays one ask per worker and
        every golden trace keeps its bytes.

        At most ``fill_cap`` jobs are dispatched per round (``None`` —
        every free worker).  Returns ``True`` when the cap cut the round
        short with free workers remaining — the caller should offer other
        runs a turn and then come back (the multiplexer's round-robin
        fairness).  Chunked rounds are byte-identical to one unbounded
        fill: the batched-API contract pins ``ask_batch(j) + ask_batch(k)``
        to the same jobs, journal bytes, and RNG draws as ``ask_batch(j+k)``.
        """
        free_ids = self.free_ids
        study = self.study
        cap = self.fill_cap
        budget = len(free_ids) if cap is None else min(cap, len(free_ids))
        result = self.result
        faults = self.faults
        obs = self.obs
        dispatched_before = result.jobs_dispatched if obs is not None else 0
        while free_ids and self.pending_retries and budget > 0:
            job, attempt = self.pending_retries.popleft()
            worker = heapq.heappop(free_ids)
            budget -= 1
            result.jobs_dispatched += 1
            self.launch(job, worker, attempt)
        starved = False
        hub = self.hub
        if hub:
            while free_ids and budget > 0:
                if study.is_done():
                    break
                job = study.ask()
                if job is None:
                    starved = True
                    break
                attempt = 1 if faults is None else faults.attempt_number(job)
                worker = heapq.heappop(free_ids)
                budget -= 1
                result.jobs_dispatched += 1
                self.launch(job, worker, attempt)
        else:
            while free_ids and budget > 0:
                if study.is_done():
                    break
                asked = min(budget, len(free_ids))
                jobs = study.ask_batch(asked)
                if not jobs:
                    starved = True
                    break
                for job in jobs:
                    attempt = 1 if faults is None else faults.attempt_number(job)
                    worker = heapq.heappop(free_ids)
                    budget -= 1
                    result.jobs_dispatched += 1
                    self.launch(job, worker, attempt)
                if len(jobs) < asked:
                    # The batch came back short: the next single ask would
                    # have returned None.
                    starved = not study.is_done()
                    break
        if hub and starved and free_ids:
            hub.emit(EventKind.WORKER_IDLE, free_workers=len(free_ids))
        capped = budget == 0 and bool(free_ids)
        if obs is not None:
            dispatched = self.result.jobs_dispatched - dispatched_before
            if dispatched:
                obs.dispatches.inc(dispatched)
                self.last_dispatch_tick = obs.tick_box[0]
            if capped:
                obs.throttles.inc()
        return capped

    # ------------------------------------------------------------ teardown

    def kill(self, job: Job) -> tuple[int | None, float, float]:
        """Tear down an in-flight dispatch killed before finishing.

        Returns ``(worker, lost, correction)``: the worker id that held
        the job, the busy time the attempt really consumed, and the
        non-positive adjustment undoing the credit granted at dispatch
        (killed jobs used to stay credited for their full duration,
        inflating utilisation).
        """
        self.in_flight.pop(job.job_id, None)
        self._live_discard(job.job_id)
        worker = self.worker_of_job.pop(job.job_id, None)
        started = self.dispatched_at.pop(job.job_id, self.clock)
        credit = self.credited.pop(job.job_id, 0.0)
        lost = min(max(self.clock - started, 0.0), credit)
        correction = lost - credit
        self.busy_time += correction
        self.store.discard(job)
        self.execution.discard(job)
        return worker, lost, correction

    def _live_discard(self, job_id: int) -> None:
        pos = self.live_pos.pop(job_id, None)
        if pos is None:
            return
        last = self.live_ids.pop()
        if last != job_id:
            self.live_ids[pos] = last
            self.live_pos[last] = pos

    def handle_failure(
        self,
        job: Job,
        worker: int | None,
        *,
        reason: str,
        lost: float,
        correction: float = 0.0,
        error: str | None = None,
    ) -> None:
        """Route one failed attempt: forfeit, retry, or abandon."""
        result = self.result
        study = self.study
        hub = self.hub
        faults = self.faults
        result.failures.append((self.clock, job.trial_id))
        result.time_lost_to_failures += lost
        kind = EventKind.JOB_TIMEOUT if reason == "timeout" else EventKind.JOB_FAILED
        extra: dict[str, object] = {}
        if error is not None:
            extra["error"] = error
        if correction:
            extra["busy_correction"] = correction
        if faults is None:
            study.on_job_failed(job)
            result.failure_log.append(
                FailureRecord(
                    time=self.clock,
                    trial_id=job.trial_id,
                    job_id=job.job_id,
                    reason=reason,
                    action="forfeited",
                    error=error,
                    lost=lost,
                )
            )
            if hub:
                hub.emit(
                    kind,
                    trial_id=job.trial_id,
                    job_id=job.job_id,
                    worker_id=worker,
                    rung=job.rung,
                    bracket=job.bracket,
                    reason=reason,
                    **extra,
                )
            return
        decision = faults.record_failure(job, reason=reason, lost=lost)
        result.failure_log.append(
            FailureRecord(
                time=self.clock,
                trial_id=job.trial_id,
                job_id=job.job_id,
                reason=reason,
                action="retried" if decision.retry else "abandoned",
                attempt=decision.failures,
                error=error,
                lost=lost,
            )
        )
        if hub:
            hub.emit(
                kind,
                trial_id=job.trial_id,
                job_id=job.job_id,
                worker_id=worker,
                rung=job.rung,
                bracket=job.bracket,
                reason=reason,
                attempt=decision.failures,
                lost=lost,
                **extra,
            )
        if decision.retry:
            result.jobs_retried += 1
            study.on_job_requeued(job)
            retry_at = self.clock + decision.delay
            if hub:
                hub.emit(
                    EventKind.JOB_RETRIED,
                    trial_id=job.trial_id,
                    job_id=job.job_id,
                    rung=job.rung,
                    bracket=job.bracket,
                    attempt=decision.failures + 1,
                    delay=decision.delay,
                    retry_at=retry_at,
                )
            self._push(retry_at, "retry", (job, decision.failures + 1))
        else:
            result.trials_abandoned += 1
            study.on_trial_abandoned(job)
            if hub:
                hub.emit(
                    EventKind.TRIAL_ABANDONED,
                    trial_id=job.trial_id,
                    job_id=job.job_id,
                    rung=job.rung,
                    bracket=job.bracket,
                    failures=decision.failures,
                    reason=reason,
                )

    # -------------------------------------------------------------- events

    def dispatch(self, event) -> bool:
        """Process one delivered event; returns whether a fill is wanted.

        The branch structure mirrors the historical inline loop exactly:
        churn/rejoin/retry events re-fill and return; job events route to
        completion or failure handling, then check the stop conditions
        (measurement cap, first completion) *before* re-filling.
        """
        self.clock = event.time
        hub = self.hub
        if hub:
            # NULL_HUB is falsy: skip even the no-op call, it runs once per
            # event in the hottest loop of the simulator.
            hub.set_time(event.time)
        kind = event.kind
        cluster = self.cluster
        if kind == "churn":
            if self.in_flight:
                # Kill a random busy worker: its job fails.  O(1) pick from
                # the swap-remove index — no per-event list copy.
                victim_id = self.live_ids[cluster.rng.integers(len(self.live_ids))]
                victim = self.in_flight[victim_id]
                worker, lost, correction = self.kill(victim)  # id retires with the worker
                self.handle_failure(
                    victim, worker, reason="churn", lost=lost, correction=correction
                )
            elif self.free_ids:
                heapq.heappop(self.free_ids)  # an idle worker goes away instead
            self._push(self.clock + max(cluster.churn_downtime, 1e-9), "rejoin", None)
            self.schedule_churn()
            return True
        if kind == "rejoin":
            heapq.heappush(self.free_ids, self.next_worker_id)
            self.next_worker_id += 1
            return True
        if kind == "retry":
            job, attempt = event.payload[1]
            self.pending_retries.append((job, attempt))
            return True
        job, gen = event.payload[1]  # liveness guaranteed by the driver's head check
        if kind == "timeout":
            worker, lost, correction = self.kill(job)
            if worker is not None:
                heapq.heappush(self.free_ids, worker)
            self.handle_failure(
                job, worker, reason="timeout", lost=lost, correction=correction
            )
        else:
            self.in_flight.pop(job.job_id, None)
            self._live_discard(job.job_id)
            worker = self.worker_of_job.pop(job.job_id, None)
            self.dispatched_at.pop(job.job_id, None)
            credit = self.credited.pop(job.job_id, 0.0)
            if worker is not None:
                heapq.heappush(self.free_ids, worker)
            if kind == "complete":
                failed = False
                study = self.study
                loss = study.cached_loss(job)
                if loss is not None:
                    # Replay: the journal's next record is this job's tell —
                    # reuse the loss, skip training, keep the
                    # checkpoint/restore bookkeeping identical.
                    self.execution.collect_replayed(job)
                else:
                    try:
                        loss = self.execution.collect(job)
                    except Exception as exc:  # noqa: BLE001 — training crashed
                        failed = True
                        self.store.discard(job)
                        self.handle_failure(
                            job, worker, reason="exception", lost=credit, error=repr(exc)
                        )
                if not failed:
                    if self.faults is not None:
                        self.faults.record_success(job)
                    record_report(
                        self.result, study, job, loss, self.clock, self.done_resource
                    )
                    if hub:
                        hub.emit(
                            EventKind.REPORT,
                            trial_id=job.trial_id,
                            job_id=job.job_id,
                            worker_id=worker,
                            rung=job.rung,
                            bracket=job.bracket,
                            loss=loss,
                            resource=job.resource,
                        )
            else:  # drop
                self.store.discard(job)
                self.execution.discard(job)
                self.handle_failure(job, worker, reason="dropped", lost=credit)
        result = self.result
        if (
            self.max_measurements is not None
            and len(result.measurements) >= self.max_measurements
        ):
            self.done = True
            return False
        if self.stop_on_first_completion and result.completions:
            self.done = True
            return False
        return True

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        """Tear down the execution strategy and make the journal durable."""
        self.execution.close()
        # End-of-run durability for the journal (flush + fsync); a crash
        # after this point can never lose recorded interactions.
        self.study.finalize()

    def finish(self) -> BackendResult:
        """Final accounting once no more of this run's events will fire."""
        result = self.result
        # Only an over-budget event means the search consumed the whole
        # budget; draining the queue or stopping early (measurement cap,
        # first completion) ends the run at this run's own clock.
        result.elapsed = (
            self.time_limit if self.budget_exhausted else min(self.clock, self.time_limit)
        )
        # Jobs still in flight at the end only worked until the stop clock —
        # roll back the optimistically-credited remainder (a no-op when the
        # budget ran out, since credits were already capped at time_limit).
        busy_time = self.busy_time
        for job_id, started in self.dispatched_at.items():
            credit = self.credited[job_id]
            worked = min(max(result.elapsed - started, 0.0), credit)
            busy_time += worked - credit
        horizon = max(result.elapsed, 1e-12)
        result.utilization = min(
            busy_time / (self.cluster.num_workers * horizon), 1.0
        )
        if self.hub:
            self.hub.set_time(result.elapsed)
            result.telemetry = self.hub.finalize(
                elapsed=result.elapsed, num_workers=self.cluster.num_workers
            )
        if self.tracer is not None:
            result.trace = self.tracer.build()
        return result


def _drain_fills(ring: deque) -> None:
    """Round-robin the pending fill requests until every run is satisfied.

    Runs re-enter the ring while their ``fill_cap`` cuts a round short, so
    no study dispatches more than a cap's worth of jobs while another is
    waiting — the multiplexer's fair-share guarantee.  The whole drain
    happens at one simulated instant (before the next event pop), which is
    why chunked fills cannot change any study's observable behaviour.
    """
    while ring:
        run = ring.popleft()
        if run.done:
            continue
        if run.fill_round():
            ring.append(run)


def drive_runs(
    queue: EventQueue,
    runs: list[SimRun],
    *,
    on_tick: Callable[[], None] | None = None,
) -> None:
    """Deliver events from ``queue`` to their owning runs until all finish.

    The startup sequence preserves each run's solo event order: every run's
    initial fill happens (round-robin, fair-share-capped) before any churn
    is scheduled, exactly as ``try_fill(); schedule_churn()`` did inline.
    After that, the loop peeks the head event, discards it if its run is
    finished or the dispatch it refers to was since killed (without
    advancing the clock, so a far-future stale completion neither extends
    any run nor counts as pending work), retires the run if the event is
    past its time budget, and otherwise delivers it.

    ``on_tick`` runs after each delivered event (and its fills) — the
    multiplexer's group-commit hook.
    """
    ring: deque[SimRun] = deque()
    for run in runs:
        run.begin()
        ring.append(run)
    _drain_fills(ring)
    for run in runs:
        run.schedule_churn()
    active = len(runs)
    while queue and active:
        head = queue.peek()
        assert head is not None
        run = head.payload[0]
        if run.done:
            queue.discard_next()
            continue
        if head.kind in _JOB_EVENT_KINDS:
            job, gen = head.payload[1]
            if run.generation.get(job.job_id) != gen or job.job_id not in run.in_flight:
                # The dispatch this event belonged to was churned or timed
                # out: the event is dead.  Discard it without advancing the
                # clock.
                queue.discard_next()
                continue
        if head.time > run.time_limit:
            run.budget_exhausted = True
            run.done = True
            active -= 1
            if not active:
                break
            queue.discard_next()
            continue
        event = queue.pop()
        if run.dispatch(event):
            ring.append(run)
            _drain_fills(ring)
        elif run.done:
            active -= 1
            if not active:
                break
        if on_tick is not None:
            on_tick()


class SimulatedCluster:
    """Discrete-event cluster executing one hyperparameter search.

    Parameters
    ----------
    num_workers:
        Parallel workers (1 reproduces the sequential setting of Section 4.1).
    straggler_std:
        Standard deviation of the ``(1 + |z|)`` duration multiplier; 0
        disables stragglers.
    drop_probability:
        Per-time-unit probability a running job is dropped.
    churn_rate:
        Expected worker-failure events per time unit across the cluster:
        at exponential intervals a worker dies — killing its in-flight job
        (reported to the scheduler as a failure) — and rejoins after
        ``churn_downtime``.  0 disables churn.
    churn_downtime:
        How long a churned worker stays away before rejoining.
    seed:
        Seed for the cluster's own randomness (stragglers/drops) — kept
        separate from the scheduler's RNG so the same search can be replayed
        under different failure conditions.
    """

    def __init__(
        self,
        num_workers: int,
        *,
        straggler_std: float = 0.0,
        drop_probability: float = 0.0,
        churn_rate: float = 0.0,
        churn_downtime: float = 0.0,
        seed: int = 0,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if straggler_std < 0:
            raise ValueError(f"straggler_std must be >= 0, got {straggler_std}")
        if not 0 <= drop_probability < 1:
            raise ValueError(f"drop_probability must be in [0, 1), got {drop_probability}")
        if churn_rate < 0 or churn_downtime < 0:
            raise ValueError("churn_rate and churn_downtime must be >= 0")
        self.num_workers = num_workers
        self.straggler_std = straggler_std
        self.drop_probability = drop_probability
        self.churn_rate = churn_rate
        self.churn_downtime = churn_downtime
        self.rng = np.random.default_rng(seed)

    def _make_execution(self, store: CheckpointStore, objective: Objective):
        """The training-execution strategy for one run (see :class:`_InlineExecution`)."""
        return _InlineExecution(store, objective)

    # ----------------------------------------------------------------- run

    def run(
        self,
        scheduler: Scheduler | Study,
        objective: Objective,
        *,
        time_limit: float,
        max_resource: float | None = None,
        max_measurements: int | None = None,
        stop_on_first_completion: bool = False,
        telemetry: TelemetryHub | None = None,
        retry_policy: RetryPolicy | None = None,
        trace: bool = False,
    ) -> BackendResult:
        """Drive ``scheduler`` against ``objective`` until the clock runs out.

        ``scheduler`` may be a bare :class:`~repro.core.Scheduler` (wrapped
        in an unjournalled :class:`~repro.study.Study` internally) or a
        :class:`~repro.study.Study` — journal-backed for crash safety, or
        armed for replay by :meth:`~repro.study.Study.resume`, in which case
        journalled training is skipped and the recorded losses reused.  The
        event loop itself only ever talks to the study's ask/tell surface.

        Parameters
        ----------
        time_limit:
            Simulated-time budget; jobs finishing after it are discarded.
        max_resource:
            Resource counting as "trained to completion" for the
            :attr:`BackendResult.completions` log (defaults to the
            objective's ``max_resource``).
        max_measurements:
            Optional hard cap on reported results (guards runaway tests).
        stop_on_first_completion:
            End the simulation at the first max-resource completion (the
            Figure 8 "time until first configuration trained for R" metric).
        telemetry:
            Optional :class:`~repro.telemetry.TelemetryHub`; when given it is
            attached to the scheduler and checkpoint store, every lifecycle
            event is emitted with the simulated clock, and the run's
            :class:`~repro.telemetry.MetricsReport` lands on
            :attr:`BackendResult.telemetry`.  Event timestamps are purely
            simulation-driven, so seeded runs emit identical streams.
        retry_policy:
            Optional :class:`~repro.backend.faults.RetryPolicy`.  Without
            one, every failure is forfeited to the scheduler exactly as
            before (``on_job_failed``) and the telemetry stream is untouched.
            With one, a failed job (drop, churn, timeout, or training crash)
            is re-dispatched verbatim after its backoff — the scheduler sees
            ``on_job_requeued`` and the job stays in flight — until the
            trial's consecutive-failure count reaches
            ``retry_policy.max_attempts``, at which point the trial is
            quarantined via ``on_trial_abandoned``.  When
            ``retry_policy.timeout_factor`` is set, each dispatch also gets a
            deadline of ``timeout_factor x`` the objective's *nominal* cost
            for the increment; jobs running past it (stragglers, injected
            hangs) are killed, the worker is freed, and the failure is
            retry-eligible like any other.
        trace:
            Reconstruct the run's span/timeline trace (opt-in, like
            ``telemetry``): a :class:`~repro.telemetry.TraceBuilder` is
            attached as a sink (a hub is created if none was given) and the
            finished :class:`~repro.telemetry.Trace` lands on
            :attr:`BackendResult.trace`.  Purely observational — scheduling,
            RNG draws and timing are untouched.
        """
        queue = EventQueue()
        state = SimRun(
            self,
            scheduler,
            objective,
            queue=queue,
            time_limit=time_limit,
            max_resource=max_resource,
            max_measurements=max_measurements,
            stop_on_first_completion=stop_on_first_completion,
            telemetry=telemetry,
            retry_policy=retry_policy,
            trace=trace,
        )
        # Pause the cyclic-garbage collector for the duration of the event
        # loop: it allocates heavily (jobs, events, measurements) but creates
        # no cycles that need collecting mid-run, and the collector's young-
        # generation passes cost ~20% of wall time at 100-worker scale.
        # Scoped and restored in ``finally`` — callers that already disabled
        # gc (or nested runs) are left untouched, and everything deferred is
        # swept on the next collection after re-enable.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            drive_runs(queue, [state])
        finally:
            if gc_was_enabled:
                gc.enable()
            state.close()
        return state.finish()

    # ------------------------------------------------------------ physics

    def _duration(self, cost: float) -> float:
        """Job duration: cost stretched by the straggler multiplier."""
        if cost <= 0:
            return 1e-9  # zero-cost jobs still take an instant, keeping event order sane
        if self.straggler_std == 0:
            return cost
        z = self.rng.normal(0.0, self.straggler_std)
        return cost * (1.0 + abs(z))

    def _drop_time(self, duration: float) -> float | None:
        """Geometric drop time, or ``None`` if the job survives.

        A job running for ``duration`` time units survives with probability
        ``(1 - p)**duration``; conditional on dropping, the drop time is the
        (continuous) geometric first-failure time.
        """
        if self.drop_probability == 0:
            return None
        u = self.rng.random()
        survive = (1.0 - self.drop_probability) ** duration
        if u < survive:
            return None
        # Invert the continuous survival function at u (u >= survive here).
        t = math.log(u) / math.log(1.0 - self.drop_probability)
        return min(max(t, 1e-9), duration)
