"""GIL-free process-pool backend: speculative training in worker processes.

:class:`~repro.backend.simulation.SimulatedCluster` decides *when* a job
completes from its cost model and the cluster RNG alone — the loss never
feeds back into scheduling until the completion event fires.  That makes
training embarrassingly speculative: the moment a job is dispatched, its
``(state, config, from_resource, to_resource)`` inputs are fully determined,
so the actual :meth:`~repro.objectives.base.Objective.train` call can run in
a separate OS process while the event loop keeps advancing the virtual
clock.  :class:`ProcessPoolBackend` exploits exactly that seam:

* **submit** — at dispatch, the job's starting state is resolved (without
  emitting telemetry; see ``CheckpointStore.resolve_start``) and the
  training increment is shipped to a fork-based pool;
* **collect** — at the completion event, the deferred ``checkpoint_restored``
  payload is emitted *then* the worker's ``(state, loss)`` is awaited, so the
  telemetry stream, checkpoint contents, and reported losses are
  byte-identical to the inline path;
* **discard** — killed dispatches (drops, churn, timeouts) cancel their
  future; speculative work for a dead job is wasted CPU, never wrong output.

For CPU-bound objectives (the numpy MLP) this removes the GIL from the
training path entirely, unlike :class:`~repro.backend.threaded
.ThreadPoolBackend`.  Cheap surrogate objectives gain nothing — process
dispatch costs more than their ``train`` — so the backend is a knob, not a
default.

The pool uses the ``fork`` start method and inherits the objective through
the fork (objectives may close over arbitrary state and need not pickle);
only the picklable training inputs and outputs cross the pipe, which is the
``process_safe`` contract on :class:`~repro.objectives.base.Objective`.
Anything that rules the pool out — one core, no ``fork``, a
``process_safe = False`` objective, or running inside an experiment-level
pool worker — silently degrades to the inline strategy, which is always
correct.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any

from ..core.types import Job
from ..objectives.base import Objective
from ..telemetry.runtime import backend_probes
from .checkpoint import CheckpointStore
from .simulation import SimulatedCluster, _InlineExecution

__all__ = ["ProcessPoolBackend"]

#: Fork-inherited objective: set while a pool is alive so workers (forked
#: lazily at first submit) can train without the objective ever pickling.
_PROC_OBJECTIVE: Objective | None = None

#: True inside pool workers; a nested backend run there stays inline.
_PROC_IN_WORKER = False


def _mark_proc_worker() -> None:
    global _PROC_IN_WORKER
    _PROC_IN_WORKER = True


def _proc_entry(
    state: Any, config: dict[str, Any], from_resource: float, to_resource: float
) -> tuple[Any, float]:
    """Pool entry point: one training increment on the fork-inherited objective."""
    assert _PROC_OBJECTIVE is not None, "worker forked without an objective"
    return _PROC_OBJECTIVE.train(state, config, from_resource, to_resource)


def _inside_experiment_worker() -> bool:
    """True when running inside an experiment-level ``parallel_map`` worker.

    Looked up through ``sys.modules`` rather than imported: the backend layer
    sits below the experiments layer, and a direct import would be circular.
    """
    parallel = sys.modules.get("repro.experiments.parallel")
    return bool(parallel is not None and getattr(parallel, "_IN_WORKER", False))


def _can_fork() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


class _ProcessPoolExecution:
    """Execution strategy farming ``Objective.train`` out to worker processes.

    Pending work is keyed by job id: ``submit`` stores the future *and* the
    resolved ``(from_resource, state)`` inputs plus the deferred restore
    event, so ``collect`` can both keep telemetry ordering identical to the
    inline path and recompute in-process if the pool infrastructure breaks
    (a worker killed by the OS surfaces as :class:`BrokenProcessPool`, not
    as a training error — genuine exceptions raised *by* ``train`` are
    re-raised unchanged for the event loop's failure handling).
    """

    def __init__(self, store: CheckpointStore, objective: Objective, procs: int):
        self.store = store
        self.objective = objective
        #: job_id -> (future | None, restore_event, (from_resource, state)).
        self._pending: dict[
            int, tuple[Future[tuple[Any, float]] | None, dict[str, Any] | None, tuple[float, Any]]
        ] = {}
        # None unless a runtime registry is installed (repro.telemetry.runtime).
        self._probes = backend_probes("processes")
        global _PROC_OBJECTIVE
        _PROC_OBJECTIVE = objective
        self._pool: ProcessPoolExecutor | None = ProcessPoolExecutor(
            max_workers=procs,
            mp_context=multiprocessing.get_context("fork"),
            initializer=_mark_proc_worker,
        )

    def submit(self, job: Job, cached: bool = False) -> None:
        from_resource, state, restore_event = self.store.resolve_start(job, self.objective)
        if cached:
            # The study's journal already holds this job's loss (replay):
            # keep the dispatch-time bookkeeping — the snapshot consumption
            # and deferred restore event above — but skip the speculative
            # training entirely; nothing is forked for an already-known job.
            self._pending[job.job_id] = (None, restore_event, (from_resource, state))
            return
        # A replayed trial's checkpoint is a lazy placeholder; rebuild the
        # real state before it crosses the process boundary.
        state = self.store.materialize(state, self.objective)
        future: Future[tuple[Any, float]] | None = None
        if self._pool is not None:
            try:
                future = self._pool.submit(
                    _proc_entry, state, job.config, from_resource, job.resource
                )
            except Exception:  # pool already broken/shut down — collect inline
                future = None
        self._pending[job.job_id] = (future, restore_event, (from_resource, state))
        if self._probes is not None:
            self._probes.dispatches.inc()
            self._probes.in_flight.set(float(len(self._pending)))

    def collect(self, job: Job) -> float:
        future, restore_event, inputs = self._pending.pop(job.job_id)
        probes = self._probes
        if probes is not None:
            probes.collects.inc()
            probes.in_flight.set(float(len(self._pending)))
        # Emit the deferred restore *before* touching the future so the event
        # lands at the completion clock, exactly where the inline path emits.
        self.store.emit_restore(restore_event)
        state_loss: tuple[Any, float] | None = None
        if future is not None:
            try:
                state_loss = future.result()
            except BrokenProcessPool:
                # Infrastructure death, not a training error: the inputs were
                # saved at submit, so the inline recompute is exact.
                state_loss = None
            if state_loss is None and probes is not None:
                # The speculative result was lost with the pool; the inline
                # recompute below is a backend-level retry.
                probes.retries.inc()
        if state_loss is None:
            from_resource, state = inputs
            state = self.store.materialize(state, self.objective)
            state_loss = self.objective.train(state, job.config, from_resource, job.resource)
        state, loss = state_loss
        self.store.put(job.trial_id, job.resource, state)
        return loss

    def collect_replayed(self, job: Job) -> None:
        """A journal-replayed job completed: bookkeeping only, no training.

        The restore event was resolved at dispatch (so donor snapshots were
        consumed at the same clock as a live run); emit it now and install
        the lazy placeholder checkpoint.
        """
        _, restore_event, _ = self._pending.pop(job.job_id)
        self.store.emit_restore(restore_event)
        self.store.replay_placeholder(job)

    def discard(self, job: Job) -> None:
        pending = self._pending.pop(job.job_id, None)
        if pending is not None and pending[0] is not None:
            pending[0].cancel()
        if pending is not None and self._probes is not None:
            self._probes.in_flight.set(float(len(self._pending)))

    def close(self) -> None:
        global _PROC_OBJECTIVE
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        if _PROC_OBJECTIVE is self.objective:
            _PROC_OBJECTIVE = None
        self._pending.clear()


class ProcessPoolBackend(SimulatedCluster):
    """A :class:`SimulatedCluster` whose training runs in worker processes.

    Scheduling, clocks, telemetry, and RNG draws are inherited verbatim from
    the simulated cluster — this class only swaps the training-execution
    strategy, so every output (records, metric reports, golden traces) is
    byte-identical to the inline backend under the same seed.  The win is
    wall-clock: CPU-bound ``train`` calls (e.g.
    :class:`~repro.objectives.mlp_real.RealMLPObjective`) run concurrently
    across real cores instead of serialising on the GIL.

    Parameters are those of :class:`SimulatedCluster` plus:

    n_procs:
        OS processes in the training pool.  Defaults to
        ``min(num_workers, os.cpu_count())`` — more processes than simulated
        workers can never be busy, more than cores never helps.
    """

    def __init__(self, num_workers: int, *, n_procs: int | None = None, **kwargs: Any):
        super().__init__(num_workers, **kwargs)
        if n_procs is not None and n_procs < 1:
            raise ValueError(f"n_procs must be >= 1, got {n_procs}")
        self.n_procs = n_procs

    def _make_execution(self, store: CheckpointStore, objective: Objective):
        procs = self.n_procs
        if procs is None:
            procs = min(self.num_workers, os.cpu_count() or 1)
        if (
            procs <= 1
            or _PROC_IN_WORKER
            or _inside_experiment_worker()
            or not _can_fork()
            or not getattr(objective, "process_safe", True)
        ):
            return _InlineExecution(store, objective)
        return _ProcessPoolExecution(store, objective, procs)
