"""Discrete-event core: a deterministic time-ordered event queue.

Both the cluster simulator and its tests are built on this tiny kernel.
Events at equal times are delivered in insertion order (a strict FIFO tie
break), which makes every simulation fully deterministic given its RNG —
a property the hypothesis suite checks.

Two implementations share the contract:

* :class:`EventQueue` — the default, a calendar queue (bucketed by time)
  whose priority structure is a min-heap of *integer* bucket ids plus a
  sorted "active" bucket.  Heap sifting compares machine ints instead of
  calling ``SimEvent.__lt__`` per level, and most pushes land in a small
  bucket, so churn stays cheap as worker counts grow.
* :class:`HeapEventQueue` — the original binary heap of events, kept as
  the reference implementation for the hypothesis equivalence suite.

Cross-bucket ordering is strict by construction (buckets partition the
time axis), so FIFO ties can only occur *within* a bucket, where events
are ordered by the same ``(time, seq)`` key the heap used.  Every seeded
trace is therefore byte-identical between the two.
"""

from __future__ import annotations

import heapq
import itertools
from bisect import insort
from typing import Any

from ..telemetry.runtime import instrument_queue

__all__ = ["EventQueue", "HeapEventQueue", "SimEvent"]


class SimEvent:
    """One scheduled occurrence; ordering is (time, insertion sequence).

    A hand-rolled slotted class rather than ``@dataclass(order=True)``: the
    simulator pushes and pops one event per job lifecycle transition, so the
    generated-dataclass comparison (which builds a ``(time, seq)`` tuple per
    operand per comparison) showed up in heap sifting at 500-worker scale.
    Comparison semantics are unchanged: ``kind`` and ``payload`` never
    participate.
    """

    __slots__ = ("time", "seq", "kind", "payload")

    def __init__(self, time: float, seq: int, kind: str, payload: Any = None) -> None:
        self.time = time
        self.seq = seq
        self.kind = kind
        self.payload = payload

    def __lt__(self, other: "SimEvent") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SimEvent):
            return NotImplemented
        return self.time == other.time and self.seq == other.seq

    def __hash__(self) -> int:
        # Defining __eq__ on a slotted class suppresses the inherited
        # __hash__; restore one over the same (time, seq) identity so
        # events can live in sets and dict keys (dead-event bookkeeping).
        return hash((self.time, self.seq))

    def __repr__(self) -> str:
        return (
            f"SimEvent(time={self.time!r}, seq={self.seq!r}, "
            f"kind={self.kind!r}, payload={self.payload!r})"
        )


class HeapEventQueue:
    """A min-heap of :class:`SimEvent` with a monotonic clock.

    The pre-calendar implementation, retained as the behavioural oracle:
    the hypothesis equivalence suite drives it in lockstep with
    :class:`EventQueue` and asserts identical delivery.
    """

    def __init__(self) -> None:
        self._heap: list[SimEvent] = []
        self._seq = itertools.count()
        self.clock = 0.0

    def push(self, time: float, kind: str, payload: Any = None) -> SimEvent:
        """Schedule an event; its time must not precede the current clock."""
        if time < self.clock:
            raise ValueError(f"cannot schedule event at {time} before clock {self.clock}")
        event = SimEvent(time=time, seq=next(self._seq), kind=kind, payload=payload)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> SimEvent:
        """Deliver the next event and advance the clock to its time."""
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        event = heapq.heappop(self._heap)
        self.clock = event.time
        return event

    def peek_time(self) -> float | None:
        """Time of the next event, or ``None`` if the queue is empty."""
        return self._heap[0].time if self._heap else None

    def peek(self) -> SimEvent | None:
        """The next event without delivering it, or ``None`` if empty."""
        return self._heap[0] if self._heap else None

    def discard_next(self) -> None:
        """Drop the next event WITHOUT advancing the clock.

        For events known to be inert — e.g. a completion scheduled by a
        dispatch that was since killed — so that dead events neither stall
        the clock at their (possibly far-future) timestamps nor make the
        queue look like it still holds pending work.
        """
        if not self._heap:
            raise IndexError("discard from empty EventQueue")
        heapq.heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class EventQueue:
    """A calendar queue of :class:`SimEvent` with a monotonic clock.

    Events are hashed into buckets of ``_width`` simulated seconds
    (``bucket id = int(time / width)``).  Pending bucket ids sit in a
    min-heap with lazy deletion; the earliest bucket is "activated" on
    demand — sorted once, then consumed through a position pointer.
    Pushes into the active bucket insert in order (they can only land at
    or after the pointer, because push times never precede the clock);
    pushes elsewhere are plain list appends.

    Bucket width adapts: whenever the queue doubles past the last resize
    threshold, the width is recomputed from the observed event span and
    every pending event is rehashed, so neither one giant bucket (width
    too coarse) nor per-op heap churn (width irrelevant) persists.

    The delivery order — globally sorted by ``(time, seq)`` — and the
    push/pop/peek/discard API are exactly those of
    :class:`HeapEventQueue`.
    """

    def __init__(self, bucket_width: float = 1.0) -> None:
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        self._seq = itertools.count()
        self.clock = 0.0
        self._size = 0
        self._width = float(bucket_width)
        self._buckets: dict[int, list[SimEvent]] = {}
        self._bucket_heap: list[int] = []
        self._active: list[SimEvent] = []
        self._active_pos = 0
        self._active_id: int | None = None
        self._next_resize = 64
        # None unless a runtime registry is installed (see
        # repro.telemetry.runtime): hot paths pay one attr load + branch.
        self._probes = instrument_queue(self)

    # -- internals ---------------------------------------------------------

    def _store(self, event: SimEvent) -> None:
        """File an event into the bucket map (never the active list)."""
        bid = int(event.time / self._width)
        bucket = self._buckets.get(bid)
        if bucket is None:
            self._buckets[bid] = [event]
            heapq.heappush(self._bucket_heap, bid)
        else:
            bucket.append(event)

    def _rebucket(self) -> None:
        """Re-hash every pending event under a width fit to the current span."""
        events = self._active[self._active_pos :]
        self._active = []
        self._active_pos = 0
        self._active_id = None
        for bucket in self._buckets.values():
            events.extend(bucket)
        self._buckets.clear()
        self._bucket_heap.clear()
        if len(events) >= 2:
            lo = min(e.time for e in events)
            hi = max(e.time for e in events)
            width = (hi - lo) / len(events)
            # Reject widths so small that bucket ids would overflow or
            # lose float precision; partitioning stays correct at any
            # positive width, so coarser is always safe.
            if width > 0.0 and hi / width < 1e15:
                self._width = width
        for event in events:
            self._store(event)
        if self._probes is not None:
            self._probes.resizes.inc()

    def _min_bid(self) -> int | None:
        """Smallest pending bucket id, dropping stale heap entries lazily."""
        heap = self._bucket_heap
        buckets = self._buckets
        while heap and heap[0] not in buckets:
            heapq.heappop(heap)
        return heap[0] if heap else None

    def _head(self) -> SimEvent | None:
        """The next event in delivery order, activating buckets as needed."""
        while True:
            if self._active_pos < len(self._active):
                mb = self._min_bid()
                active_id = self._active_id
                if mb is None or (active_id is not None and active_id <= mb):
                    return self._active[self._active_pos]
                # A push landed in a bucket *before* the active one (its
                # time is >= clock but hashes earlier): spill the active
                # remainder back and re-activate from the true minimum.
                rest = self._active[self._active_pos :]
                assert active_id is not None
                existing = self._buckets.get(active_id)
                if existing is None:
                    self._buckets[active_id] = rest
                    heapq.heappush(self._bucket_heap, active_id)
                else:
                    existing.extend(rest)
                self._active = []
                self._active_pos = 0
                self._active_id = None
                continue
            mb = self._min_bid()
            if mb is None:
                return None
            heapq.heappop(self._bucket_heap)
            bucket = self._buckets.pop(mb)
            bucket.sort()
            self._active = bucket
            self._active_pos = 0
            self._active_id = mb

    def _consume(self) -> None:
        """Step past the current head (which ``_head`` has materialised)."""
        self._size -= 1
        pos = self._active_pos + 1
        if pos >= len(self._active):
            self._active = []
            self._active_pos = 0
            self._active_id = None
        elif pos > 256 and pos * 2 >= len(self._active):
            del self._active[:pos]
            self._active_pos = 0
        else:
            self._active_pos = pos

    # -- public contract (mirrors HeapEventQueue) --------------------------

    def push(self, time: float, kind: str, payload: Any = None) -> SimEvent:
        """Schedule an event; its time must not precede the current clock."""
        if time < self.clock:
            raise ValueError(f"cannot schedule event at {time} before clock {self.clock}")
        event = SimEvent(time=time, seq=next(self._seq), kind=kind, payload=payload)
        self._size += 1
        if self._probes is not None:
            self._probes.pushes.inc()
        if self._size >= self._next_resize:
            self._store(event)
            self._rebucket()
            self._next_resize = max(64, self._size * 2)
            return event
        bid = int(time / self._width)
        if bid == self._active_id and self._active_pos < len(self._active):
            # In-order insert past the consumed prefix: the new key
            # (time >= clock, fresh max seq) can never sort before it.
            insort(self._active, event, lo=self._active_pos)
        else:
            self._store(event)
        return event

    def pop(self) -> SimEvent:
        """Deliver the next event and advance the clock to its time."""
        event = self._head()
        if event is None:
            raise IndexError("pop from empty EventQueue")
        self._consume()
        self.clock = event.time
        if self._probes is not None:
            self._probes.pops.inc()
        return event

    def peek_time(self) -> float | None:
        """Time of the next event, or ``None`` if the queue is empty."""
        event = self._head()
        return event.time if event is not None else None

    def peek(self) -> SimEvent | None:
        """The next event without delivering it, or ``None`` if empty."""
        return self._head()

    def discard_next(self) -> None:
        """Drop the next event WITHOUT advancing the clock.

        For events known to be inert — e.g. a completion scheduled by a
        dispatch that was since killed — so that dead events neither stall
        the clock at their (possibly far-future) timestamps nor make the
        queue look like it still holds pending work.
        """
        if self._head() is None:
            raise IndexError("discard from empty EventQueue")
        self._consume()

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0
