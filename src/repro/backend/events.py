"""Discrete-event core: a deterministic time-ordered event queue.

Both the cluster simulator and its tests are built on this tiny kernel.
Events at equal times are delivered in insertion order (a strict FIFO tie
break), which makes every simulation fully deterministic given its RNG —
a property the hypothesis suite checks.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any

__all__ = ["EventQueue", "SimEvent"]


class SimEvent:
    """One scheduled occurrence; ordering is (time, insertion sequence).

    A hand-rolled slotted class rather than ``@dataclass(order=True)``: the
    simulator pushes and pops one event per job lifecycle transition, so the
    generated-dataclass comparison (which builds a ``(time, seq)`` tuple per
    operand per comparison) showed up in heap sifting at 500-worker scale.
    Comparison semantics are unchanged: ``kind`` and ``payload`` never
    participate.
    """

    __slots__ = ("time", "seq", "kind", "payload")

    def __init__(self, time: float, seq: int, kind: str, payload: Any = None) -> None:
        self.time = time
        self.seq = seq
        self.kind = kind
        self.payload = payload

    def __lt__(self, other: "SimEvent") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SimEvent):
            return NotImplemented
        return self.time == other.time and self.seq == other.seq

    def __repr__(self) -> str:
        return (
            f"SimEvent(time={self.time!r}, seq={self.seq!r}, "
            f"kind={self.kind!r}, payload={self.payload!r})"
        )


class EventQueue:
    """A min-heap of :class:`SimEvent` with a monotonic clock."""

    def __init__(self) -> None:
        self._heap: list[SimEvent] = []
        self._seq = itertools.count()
        self.clock = 0.0

    def push(self, time: float, kind: str, payload: Any = None) -> SimEvent:
        """Schedule an event; its time must not precede the current clock."""
        if time < self.clock:
            raise ValueError(f"cannot schedule event at {time} before clock {self.clock}")
        event = SimEvent(time=time, seq=next(self._seq), kind=kind, payload=payload)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> SimEvent:
        """Deliver the next event and advance the clock to its time."""
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        event = heapq.heappop(self._heap)
        self.clock = event.time
        return event

    def peek_time(self) -> float | None:
        """Time of the next event, or ``None`` if the queue is empty."""
        return self._heap[0].time if self._heap else None

    def peek(self) -> SimEvent | None:
        """The next event without delivering it, or ``None`` if empty."""
        return self._heap[0] if self._heap else None

    def discard_next(self) -> None:
        """Drop the next event WITHOUT advancing the clock.

        For events known to be inert — e.g. a completion scheduled by a
        dispatch that was since killed — so that dead events neither stall
        the clock at their (possibly far-future) timestamps nor make the
        queue look like it still holds pending work.
        """
        if not self._heap:
            raise IndexError("discard from empty EventQueue")
        heapq.heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
