"""Shared backend plumbing: the result record and the report path.

Every backend produces a :class:`BackendResult` — the chronological stream
of measurements plus bookkeeping the analysis layer needs (completions at
the maximum resource for Appendix A.1, worker utilisation for the wall-clock
claims of Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.scheduler import Scheduler
from ..core.types import Job, Measurement
from ..telemetry import MetricsReport
from ..telemetry.tracing import Trace

__all__ = ["BackendResult", "FailureRecord", "record_report"]


# Per-scheduler report plumbing (Study.tell vs bare report; the
# ``completed_brackets`` counter as a method on SynchronousSHA vs a plain
# attribute on Hyperband), resolved once per scheduler object instead of
# re-running three getattr/callable probes per completion —
# ``record_report`` sits in the simulator's hottest loop.  The scheduler
# reference in the value keeps the id-key honest across gc reuse.
_REPORT_PLUMBING: dict[int, tuple[object, object, object]] = {}
_REPORT_PLUMBING_CAP = 64


def _report_plumbing(scheduler: Scheduler) -> tuple[object, object]:
    hit = _REPORT_PLUMBING.get(id(scheduler))
    if hit is not None and hit[0] is scheduler:
        return hit[1], hit[2]
    tell = getattr(scheduler, "tell", None)
    if not callable(tell):
        tell = None
    # Only a Study exposes ``.scheduler``; unwrap it to reach the counter.
    target = getattr(scheduler, "scheduler", scheduler)
    counter = getattr(target, "completed_brackets", None)
    if callable(counter):
        snapshot = counter  # bound method: call per report
    elif counter is None:
        snapshot = None
    else:
        # Mutable data attribute: re-read it on every report.
        def snapshot(target=target):  # noqa: ANN001
            return target.completed_brackets

    if len(_REPORT_PLUMBING) >= _REPORT_PLUMBING_CAP:
        _REPORT_PLUMBING.clear()
    _REPORT_PLUMBING[id(scheduler)] = (scheduler, tell, snapshot)
    return tell, snapshot


@dataclass(frozen=True)
class FailureRecord:
    """One failed job attempt, with everything the fault layer knew about it.

    ``action`` is what happened next: ``"retried"`` (the job was re-queued
    under a retry policy), ``"abandoned"`` (the trial's retry budget ran out
    and it was quarantined), or ``"forfeited"`` (no policy — the legacy
    hand-it-to-the-scheduler path).  ``error`` carries ``repr(exc)`` for
    crashes and ``None`` for drops/churn/timeouts.
    """

    time: float
    trial_id: int
    job_id: int
    reason: str
    action: str
    attempt: int = 1
    error: str | None = None
    #: Backend time the failed attempt burned (what the failure wasted).
    lost: float = 0.0


@dataclass
class BackendResult:
    """Everything observed while a backend drove one search."""

    measurements: list[Measurement] = field(default_factory=list)
    #: (time, trial_id) for every job finishing at resource >= max_resource.
    completions: list[tuple[float, int]] = field(default_factory=list)
    #: (time, trial_id) for every dropped/failed job.
    failures: list[tuple[float, int]] = field(default_factory=list)
    #: Rich per-failure records, parallel to ``failures``.
    failure_log: list[FailureRecord] = field(default_factory=list)
    #: Re-dispatches granted by the run's retry policy (0 without one).
    jobs_retried: int = 0
    #: Trials quarantined after exhausting their retry budget.
    trials_abandoned: int = 0
    #: Backend time spent on attempts that ultimately failed.
    time_lost_to_failures: float = 0.0
    #: completed-bracket counter snapshots, parallel to ``measurements``
    #: (None for schedulers without the notion) — Appendix A.2 accounting.
    bracket_snapshots: list[int | None] = field(default_factory=list)
    #: Final backend clock.
    elapsed: float = 0.0
    #: Total busy worker-time divided by (workers x elapsed).
    utilization: float = 0.0
    #: Jobs dispatched (including dropped ones).
    jobs_dispatched: int = 0
    #: End-of-run metrics snapshot when the run had a telemetry hub with a
    #: :class:`~repro.telemetry.MetricsCollector` attached; ``None`` otherwise.
    telemetry: MetricsReport | None = None
    #: Reconstructed span/timeline trace when the run was started with
    #: ``trace=True`` (see :mod:`repro.telemetry.tracing`); ``None`` otherwise.
    trace: Trace | None = None

    def first_completion_time(self) -> float | None:
        """Clock time of the first job finishing at the max resource."""
        return self.completions[0][0] if self.completions else None

    def num_completions(self, by_time: float | None = None) -> int:
        """How many max-resource completions happened by ``by_time``."""
        if by_time is None:
            return len(self.completions)
        return sum(1 for t, _ in self.completions if t <= by_time)


def record_report(
    result: BackendResult,
    scheduler: Scheduler,
    job: Job,
    loss: float,
    time: float,
    max_resource: float | None,
) -> None:
    """Deliver a completed job's loss to the scheduler and log it.

    The scheduler records the measurement on the trial itself (see
    ``Scheduler.note_result``); the backend keeps its own timestamped log.
    """
    measurement = Measurement(trial_id=job.trial_id, resource=job.resource, loss=loss, time=time)
    # A journal-backed Study journals the result before the scheduler sees
    # it (write-ahead); a bare scheduler takes the report directly.
    tell, snapshot = _report_plumbing(scheduler)
    if tell is not None:
        tell(job, loss, time=time)
    else:
        scheduler.report(job, loss)
    result.measurements.append(measurement)
    # ``completed_brackets`` resolves to a plain count so the snapshot log
    # stays scheduler-free (and therefore picklable for the parallel engine).
    result.bracket_snapshots.append(None if snapshot is None else snapshot())
    if max_resource is not None and job.resource >= max_resource:
        result.completions.append((time, job.trial_id))
