"""Covariance kernels for the Gaussian-process substrate.

Only what the model-based baselines need: RBF and Matern-5/2 over the unit
hypercube, with per-kernel signal variance and a shared isotropic length
scale.  Everything is vectorised numpy; no pairwise Python loops.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

__all__ = ["Kernel", "RBF", "Matern52", "cdist_sq"]


def cdist_sq(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between rows of ``a`` and rows of ``b``."""
    a = np.atleast_2d(a)
    b = np.atleast_2d(b)
    # ||a-b||^2 = ||a||^2 + ||b||^2 - 2 a.b  (clipped: rounding can go negative)
    sq = (
        np.sum(a**2, axis=1)[:, None]
        + np.sum(b**2, axis=1)[None, :]
        - 2.0 * a @ b.T
    )
    return np.maximum(sq, 0.0)


class Kernel(ABC):
    """A positive-definite covariance function ``k(x, x')``."""

    @abstractmethod
    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Gram matrix between rows of ``a`` and rows of ``b``."""

    @abstractmethod
    def with_params(self, length_scale: float, variance: float) -> "Kernel":
        """A copy with new hyperparameters (used by grid marginal-likelihood tuning)."""


@dataclass(frozen=True)
class RBF(Kernel):
    """Squared-exponential kernel ``variance * exp(-||x-x'||^2 / (2 l^2))``."""

    length_scale: float = 0.25
    variance: float = 1.0

    def __post_init__(self) -> None:
        if self.length_scale <= 0 or self.variance <= 0:
            raise ValueError("length_scale and variance must be positive")

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        sq = cdist_sq(a, b)
        return self.variance * np.exp(-0.5 * sq / self.length_scale**2)

    def with_params(self, length_scale: float, variance: float) -> "RBF":
        return RBF(length_scale=length_scale, variance=variance)


@dataclass(frozen=True)
class Matern52(Kernel):
    """Matern-5/2 kernel, the default in most Bayesian-optimisation services."""

    length_scale: float = 0.25
    variance: float = 1.0

    def __post_init__(self) -> None:
        if self.length_scale <= 0 or self.variance <= 0:
            raise ValueError("length_scale and variance must be positive")

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        d = np.sqrt(cdist_sq(a, b)) / self.length_scale
        sqrt5d = np.sqrt(5.0) * d
        return self.variance * (1.0 + sqrt5d + 5.0 / 3.0 * d**2) * np.exp(-sqrt5d)

    def with_params(self, length_scale: float, variance: float) -> "Matern52":
        return Matern52(length_scale=length_scale, variance=variance)
