"""Model substrates for the model-based baselines (GP, KDE, acquisitions)."""

from .acquisition import expected_improvement, propose_constant_liar, ucb
from .gp import GaussianProcess
from .kde import DensityEstimate, TPESampler
from .kernels import Kernel, Matern52, RBF

__all__ = [
    "DensityEstimate",
    "GaussianProcess",
    "Kernel",
    "Matern52",
    "RBF",
    "TPESampler",
    "expected_improvement",
    "propose_constant_liar",
    "ucb",
]
