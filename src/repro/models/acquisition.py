"""Acquisition functions and constant-liar batching.

Expected improvement drives the Vizier and Fabolas stand-ins.  For parallel
proposals we implement the constant-liar heuristic [Ginsbourger et al., 2010]
the paper cites as the standard way to parallelise Bayesian optimisation:
pending points are imputed with a fixed "lie" (the current best observation)
and the model is refit so later proposals in the batch spread out.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import norm

from .gp import GaussianProcess

__all__ = ["expected_improvement", "ucb", "propose_constant_liar"]


def expected_improvement(
    mean: np.ndarray, std: np.ndarray, best: float, xi: float = 0.0
) -> np.ndarray:
    """EI for *minimisation*: ``E[max(best - xi - Y, 0)]`` under N(mean, std^2)."""
    mean = np.asarray(mean, dtype=float)
    std = np.maximum(np.asarray(std, dtype=float), 1e-12)
    gap = best - xi - mean
    z = gap / std
    return gap * norm.cdf(z) + std * norm.pdf(z)


def ucb(mean: np.ndarray, std: np.ndarray, beta: float = 2.0) -> np.ndarray:
    """Lower-confidence bound *utility* for minimisation (higher is better)."""
    return -(np.asarray(mean, dtype=float) - beta * np.asarray(std, dtype=float))


def propose_constant_liar(
    gp: GaussianProcess,
    x_obs: np.ndarray,
    y_obs: np.ndarray,
    candidates: np.ndarray,
    batch_size: int,
    *,
    lie: float | None = None,
) -> list[int]:
    """Pick ``batch_size`` candidate indices via EI with constant-liar updates.

    After each pick the chosen point is appended to the observation set with
    the lie value (default: the best observed loss) and the GP is refit, so
    subsequent picks avoid clustering on the same optimum.  Returns indices
    into ``candidates``; fewer than ``batch_size`` if candidates run out.
    """
    x_obs = np.atleast_2d(np.asarray(x_obs, dtype=float))
    y_obs = np.asarray(y_obs, dtype=float).ravel()
    finite = y_obs[np.isfinite(y_obs)]
    lie_value = lie if lie is not None else (float(finite.min()) if len(finite) else 0.0)
    chosen: list[int] = []
    remaining = list(range(len(candidates)))
    x_aug, y_aug = x_obs, y_obs
    for _ in range(min(batch_size, len(remaining))):
        gp.fit(x_aug, y_aug)
        best = float(np.min(y_aug[np.isfinite(y_aug)])) if np.isfinite(y_aug).any() else 0.0
        mean, std = gp.predict(candidates[remaining])
        scores = expected_improvement(mean, std, best)
        pick_pos = int(np.argmax(scores))
        pick = remaining.pop(pick_pos)
        chosen.append(pick)
        x_aug = np.vstack([x_aug, candidates[pick][None, :]])
        y_aug = np.append(y_aug, lie_value)
    return chosen
