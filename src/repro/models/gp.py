"""Gaussian-process regression built from scratch on numpy/scipy.

This is the substrate behind the Vizier stand-in (GP-EI over configurations)
and the Fabolas stand-in (GP over configuration x dataset-fraction).  It
implements exact GP regression with a Cholesky factorisation, observation
noise, output normalisation, and a small grid search over kernel
hyperparameters by marginal likelihood — deliberately simple, numerically
careful, and fast enough to sit inside simulated tuning loops with hundreds
of observations.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import cho_factor, cho_solve

from .kernels import Kernel, Matern52

__all__ = ["GaussianProcess"]

_JITTER = 1e-8


class GaussianProcess:
    """Exact GP regression with marginal-likelihood grid tuning.

    Parameters
    ----------
    kernel:
        Prior covariance; defaults to Matern-5/2.
    noise:
        Observation noise variance (on the *normalised* target scale).
    normalize:
        Standardise targets to zero mean / unit variance before fitting;
        predictions are transformed back.
    """

    def __init__(self, kernel: Kernel | None = None, noise: float = 1e-4, normalize: bool = True):
        if noise <= 0:
            raise ValueError(f"noise must be positive, got {noise}")
        self.kernel = kernel or Matern52()
        self.noise = noise
        self.normalize = normalize
        self._x: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._chol = None
        self._y_mean = 0.0
        self._y_std = 1.0

    # ------------------------------------------------------------ fitting

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        """Condition the GP on observations ``(x, y)``.

        ``x`` is ``(n, d)`` (unit-cube encodings), ``y`` is ``(n,)``.
        Non-finite targets are clamped to the largest finite observation —
        the guard Section 4.3 describes model-based methods needing against
        heavy-tailed losses (we reproduce both the capped and uncapped
        behaviour in the Figure 5 bench).
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if len(x) != len(y):
            raise ValueError(f"x has {len(x)} rows but y has {len(y)} entries")
        if len(y) == 0:
            raise ValueError("cannot fit a GP to zero observations")
        finite = np.isfinite(y)
        if not finite.any():
            y = np.zeros_like(y)
        elif not finite.all():
            y = np.where(finite, y, y[finite].max())
        self._y_mean = float(y.mean()) if self.normalize else 0.0
        std = float(y.std()) if self.normalize else 1.0
        self._y_std = std if std > 0 else 1.0
        z = (y - self._y_mean) / self._y_std
        gram = self.kernel(x, x)
        gram[np.diag_indices_from(gram)] += self.noise + _JITTER
        self._chol = cho_factor(gram, lower=True)
        self._alpha = cho_solve(self._chol, z)
        self._x = x
        self._z = z
        return self

    def fit_tuned(
        self,
        x: np.ndarray,
        y: np.ndarray,
        length_scales: tuple[float, ...] = (0.1, 0.2, 0.4, 0.8),
        variances: tuple[float, ...] = (0.5, 1.0, 2.0),
    ) -> "GaussianProcess":
        """Fit with the kernel hyperparameters maximising marginal likelihood
        over a small grid — the pragmatic stand-in for gradient-based
        type-II maximum likelihood."""
        best_ll = -np.inf
        best_kernel = self.kernel
        for ls in length_scales:
            for var in variances:
                self.kernel = best_kernel.with_params(ls, var)
                try:
                    self.fit(x, y)
                except np.linalg.LinAlgError:
                    continue
                ll = self.log_marginal_likelihood()
                if ll > best_ll:
                    best_ll = ll
                    best_kernel = self.kernel
        self.kernel = best_kernel
        return self.fit(x, y)

    def log_marginal_likelihood(self) -> float:
        """Log evidence of the current fit (normalised-target scale)."""
        self._require_fit()
        n = len(self._z)
        log_det = 2.0 * np.sum(np.log(np.diag(self._chol[0])))
        return float(-0.5 * self._z @ self._alpha - 0.5 * log_det - 0.5 * n * np.log(2 * np.pi))

    # --------------------------------------------------------- prediction

    def predict(self, x_new: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation at the rows of ``x_new``."""
        self._require_fit()
        x_new = np.atleast_2d(np.asarray(x_new, dtype=float))
        k_star = self.kernel(self._x, x_new)  # (n, m)
        mean = k_star.T @ self._alpha
        v = cho_solve(self._chol, k_star)
        prior_var = np.diag(self.kernel(x_new, x_new)).copy()
        var = np.maximum(prior_var - np.sum(k_star * v, axis=0), _JITTER)
        return (
            mean * self._y_std + self._y_mean,
            np.sqrt(var) * self._y_std,
        )

    def _require_fit(self) -> None:
        if self._x is None:
            raise RuntimeError("GaussianProcess must be fit before use")

    @property
    def num_observations(self) -> int:
        return 0 if self._x is None else len(self._x)
