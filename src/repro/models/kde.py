"""TPE-style kernel-density model used by the BOHB baseline.

BOHB [Falkner et al., 2018] replaces SHA's uniform sampling with a
Tree-Parzen-Estimator-like scheme: fit one KDE ``l(x)`` to the best
``gamma`` fraction of configurations observed at a rung and another KDE
``g(x)`` to the rest, then propose configurations maximising ``l(x)/g(x)``
among samples drawn from ``l``.  We implement the KDEs as product-form
Gaussian kernels over the unit-cube encoding with Scott's-rule bandwidths,
matching BOHB's use of statsmodels' multivariate KDE in spirit.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DensityEstimate", "TPESampler"]

_MIN_BANDWIDTH = 1e-3


class DensityEstimate:
    """Product-Gaussian KDE on ``[0, 1]^d`` with Scott's-rule bandwidths."""

    def __init__(self, points: np.ndarray, min_bandwidth: float = _MIN_BANDWIDTH):
        points = np.atleast_2d(np.asarray(points, dtype=float))
        if len(points) == 0:
            raise ValueError("DensityEstimate requires at least one point")
        self.points = points
        n, d = points.shape
        scott = n ** (-1.0 / (d + 4))
        spread = np.maximum(points.std(axis=0), min_bandwidth)
        self.bandwidths = np.maximum(scott * spread, min_bandwidth)

    def pdf(self, x: np.ndarray) -> np.ndarray:
        """Density at the rows of ``x`` (unnormalised boundary handling)."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        # (m, n, d) standardised distances, fully vectorised.
        z = (x[:, None, :] - self.points[None, :, :]) / self.bandwidths[None, None, :]
        log_kernel = -0.5 * np.sum(z**2, axis=2) - np.sum(
            np.log(self.bandwidths * np.sqrt(2 * np.pi))
        )
        # log-mean-exp over the n kernels for numerical stability.
        peak = log_kernel.max(axis=1, keepdims=True)
        return np.exp(peak.ravel()) * np.mean(np.exp(log_kernel - peak), axis=1)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` points: pick a kernel centre, add bandwidth noise, clip."""
        idx = rng.integers(len(self.points), size=n)
        noise = rng.normal(0.0, 1.0, size=(n, self.points.shape[1])) * self.bandwidths
        return np.clip(self.points[idx] + noise, 0.0, 1.0)


class TPESampler:
    """Good/bad-KDE proposal scheme over the unit cube.

    Parameters
    ----------
    dim:
        Dimensionality of the encoded space.
    gamma:
        Fraction of observations labelled "good" (BOHB default 0.15).
    num_candidates:
        Samples drawn from ``l`` per proposal (BOHB default 24).
    random_fraction:
        Probability of falling back to a uniform sample (BOHB default 1/3),
        which keeps the method consistent and exploration alive.
    min_points:
        Minimum observations before the model activates; below this the
        sampler is uniform.  BOHB uses ``dim + 1`` per class.
    """

    def __init__(
        self,
        dim: int,
        *,
        gamma: float = 0.15,
        num_candidates: int = 24,
        random_fraction: float = 1.0 / 3.0,
        min_points: int | None = None,
    ):
        if not 0 < gamma < 1:
            raise ValueError(f"gamma must be in (0, 1), got {gamma}")
        self.dim = dim
        self.gamma = gamma
        self.num_candidates = num_candidates
        self.random_fraction = random_fraction
        self.min_points = min_points if min_points is not None else dim + 1
        self._x: list[np.ndarray] = []
        self._y: list[float] = []
        #: Whether the most recent :meth:`propose` used the KDE ratio (True)
        #: or fell back to a uniform draw (False) — the proposal-origin tag.
        self.last_proposal_was_model = False

    def observe(self, x: np.ndarray, loss: float) -> None:
        """Record one (encoded config, loss) observation."""
        self._x.append(np.asarray(x, dtype=float))
        # Non-finite losses are treated as arbitrarily bad but kept: they
        # teach g(x) where the divergent region is.
        self._y.append(float(loss) if np.isfinite(loss) else np.inf)

    @property
    def num_observations(self) -> int:
        return len(self._y)

    def model_ready(self) -> bool:
        n_good = max(self.min_points, int(np.ceil(self.gamma * len(self._y))))
        return len(self._y) >= n_good + self.min_points

    def propose(self, rng: np.random.Generator) -> np.ndarray:
        """Propose one point in the unit cube."""
        if not self.model_ready() or rng.random() < self.random_fraction:
            self.last_proposal_was_model = False
            return rng.random(self.dim)
        y = np.asarray(self._y)
        x = np.stack(self._x)
        order = np.argsort(_nan_last(y), kind="stable")
        n_good = max(self.min_points, int(np.ceil(self.gamma * len(y))))
        good_idx = order[:n_good]
        bad_idx = order[n_good:]
        # Cap KDE support sizes for speed on long runs: keep the very best
        # "good" points and a uniform subsample of the "bad" ones.
        if len(good_idx) > 256:
            good_idx = good_idx[:256]
        if len(bad_idx) > 256:
            bad_idx = bad_idx[rng.choice(len(bad_idx), size=256, replace=False)]
        good = DensityEstimate(x[good_idx])
        bad = DensityEstimate(x[bad_idx])
        candidates = good.sample(self.num_candidates, rng)
        ratio = good.pdf(candidates) / np.maximum(bad.pdf(candidates), 1e-32)
        self.last_proposal_was_model = True
        return candidates[int(np.argmax(ratio))]


def _nan_last(y: np.ndarray) -> np.ndarray:
    """Map inf/nan to +inf so they sort to the 'bad' side."""
    out = y.copy()
    out[~np.isfinite(out)] = np.inf
    return out
