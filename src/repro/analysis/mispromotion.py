"""Monte-Carlo check of the Section 3.3 mispromotion argument.

"Intuitively, in the first rung with n evaluated configurations, the number
of mispromoted configurations is roughly sqrt(n), since the process
resembles the convergence of an empirical cumulative distribution function
to its expected value (c.f. the Dvoretzky-Kiefer-Wolfowitz inequality)."

We reproduce the stochastic process exactly: configurations with i.i.d.
quality arrive one at a time (ASHA's growing base rung); after each arrival
ASHA promotes any configuration currently in the top ``1/eta`` fraction
that has not been promoted yet.  A *mispromotion* is a promoted
configuration that does not belong to the top ``n/eta`` of the final pool.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["simulate_mispromotions", "MispromotionStudy", "mispromotion_curve"]


def simulate_mispromotions(n: int, eta: int, rng: np.random.Generator) -> int:
    """Number of incorrect rung-0 promotions after ``n`` sequential arrivals."""
    if n < eta:
        return 0
    losses = rng.random(n)
    promoted: list[int] = []
    promoted_set: set[int] = set()
    # Maintain the sorted prefix incrementally; n is a few thousand at most in
    # the bench, so a numpy argsort per arrival would be O(n^2 log n) — use
    # insertion into a sorted list of (loss, index) instead.
    import bisect

    sorted_prefix: list[tuple[float, int]] = []
    for i in range(n):
        bisect.insort(sorted_prefix, (losses[i], i))
        quota = (i + 1) // eta
        for loss, idx in sorted_prefix[:quota]:
            if idx not in promoted_set:
                promoted_set.add(idx)
                promoted.append(idx)
    true_top = set(np.argsort(losses)[: n // eta].tolist())
    return sum(1 for idx in promoted if idx not in true_top)


@dataclass
class MispromotionStudy:
    """Aggregated mispromotion counts for one ``n``."""

    n: int
    eta: int
    mean: float
    std: float
    sqrt_n: float

    @property
    def ratio(self) -> float:
        """Mean mispromotions divided by sqrt(n) — should be O(1) in n."""
        return self.mean / self.sqrt_n


def mispromotion_curve(
    ns: list[int], eta: int = 4, repeats: int = 20, seed: int = 0
) -> list[MispromotionStudy]:
    """Mispromotion statistics across pool sizes (the bench's series)."""
    rng = np.random.default_rng(seed)
    out = []
    for n in ns:
        counts = [simulate_mispromotions(n, eta, rng) for _ in range(repeats)]
        out.append(
            MispromotionStudy(
                n=n,
                eta=eta,
                mean=float(np.mean(counts)),
                std=float(np.std(counts)),
                sqrt_n=float(np.sqrt(n)),
            )
        )
    return out
