"""Terminal line charts for the figure benches.

The paper's artefacts are mostly *curves*; tables alone hide crossovers.
:func:`render_chart` draws aggregate curves as a fixed-grid ASCII plot —
enough to eyeball "who wins and where the lines cross" straight from the
bench output, with no plotting dependencies.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

__all__ = ["render_chart", "sparkline"]

_MARKS = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
_TICKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line unicode sparkline of a series (inf/nan rendered as spaces)."""
    arr = np.asarray(list(values), dtype=float)
    finite = arr[np.isfinite(arr)]
    if len(finite) == 0:
        return " " * len(arr)
    lo, hi = float(finite.min()), float(finite.max())
    span = hi - lo
    out = []
    for v in arr:
        if not math.isfinite(v):
            out.append(" ")
        elif span == 0:
            out.append(_TICKS[3])
        else:
            out.append(_TICKS[min(int((v - lo) / span * (len(_TICKS) - 1)), len(_TICKS) - 1)])
    return "".join(out)


def render_chart(
    grid: Sequence[float],
    named_series: Mapping[str, Sequence[float]],
    *,
    width: int = 72,
    height: int = 16,
    title: str | None = None,
    y_label: str = "",
) -> str:
    """Multi-series ASCII line chart; each series gets a letter marker.

    Non-finite values (before a method's first report) are simply not
    plotted.  The y-axis is linear between the finite min and max across all
    series; ties on a cell show the *later-listed* series' marker.
    """
    if len(named_series) > len(_MARKS):
        raise ValueError(f"too many series ({len(named_series)} > {len(_MARKS)})")
    grid = np.asarray(list(grid), dtype=float)
    all_vals = np.concatenate([np.asarray(list(s), dtype=float) for s in named_series.values()])
    finite = all_vals[np.isfinite(all_vals)]
    if len(finite) == 0:
        return "(no finite data)"
    lo, hi = float(finite.min()), float(finite.max())
    if hi == lo:
        hi = lo + 1.0
    canvas = [[" "] * width for _ in range(height)]
    t_lo, t_hi = float(grid.min()), float(grid.max())
    t_span = (t_hi - t_lo) or 1.0

    for mark, (name, series) in zip(_MARKS, named_series.items()):
        arr = np.asarray(list(series), dtype=float)
        for t, v in zip(grid, arr):
            if not math.isfinite(v):
                continue
            col = min(int((t - t_lo) / t_span * (width - 1)), width - 1)
            row = min(int((hi - v) / (hi - lo) * (height - 1)), height - 1)
            canvas[row][col] = mark

    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(canvas):
        if i == 0:
            label = f"{hi:>10.4g} |"
        elif i == height - 1:
            label = f"{lo:>10.4g} |"
        else:
            label = " " * 10 + " |"
        lines.append(label + "".join(row))
    lines.append(" " * 10 + " +" + "-" * width)
    lines.append(" " * 12 + f"{t_lo:<12.6g}{'time':^{max(width - 24, 4)}}{t_hi:>12.6g}")
    legend = "   ".join(
        f"{mark}={name}" for mark, name in zip(_MARKS, named_series.keys())
    )
    lines.append(" " * 12 + legend)
    if y_label:
        lines.append(" " * 12 + f"(y: {y_label})")
    return "\n".join(lines)
