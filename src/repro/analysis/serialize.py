"""Serialisation of experiment results to/from JSON.

Long experiments (a 500-worker Figure-5 run simulates ~200k jobs) are worth
persisting: these helpers round-trip :class:`~repro.analysis.results.RunRecord`
and :class:`~repro.analysis.results.AggregateCurve` through plain-JSON
documents so runs can be archived, diffed, and re-aggregated without
re-simulating.  Only analysis-level data is stored — schedulers and backend
internals are deliberately not pickled.
"""

from __future__ import annotations

import json
import math
from typing import Any

import numpy as np

from .results import AggregateCurve, RunRecord
from .tracker import IncumbentTrace

__all__ = [
    "trace_to_dict",
    "trace_from_dict",
    "record_to_dict",
    "record_from_dict",
    "curve_to_dict",
    "curve_from_dict",
    "save_records",
    "load_records",
]


def _clean(value: float) -> float | str:
    """JSON has no inf/nan literals; encode them as strings."""
    if math.isnan(value):
        return "nan"
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return float(value)


def _restore(value: Any) -> float:
    if isinstance(value, str):
        return float(value)
    return float(value)


def trace_to_dict(trace: IncumbentTrace) -> dict:
    return {
        "times": [float(t) for t in trace.times],
        "values": [_clean(v) for v in trace.values],
        "trial_ids": list(trace.trial_ids),
    }


def trace_from_dict(data: dict) -> IncumbentTrace:
    trace = IncumbentTrace()
    for t, v, trial_id in zip(data["times"], data["values"], data["trial_ids"]):
        trace.append(float(t), _restore(v), int(trial_id))
    return trace


def record_to_dict(record: RunRecord) -> dict:
    """Serialise a run record (the backend log is summarised, not stored)."""
    out = {
        "method": record.method,
        "seed": record.seed,
        "trace": trace_to_dict(record.trace),
    }
    if record.backend is not None:
        out["summary"] = {
            "jobs_dispatched": record.backend.jobs_dispatched,
            "num_measurements": len(record.backend.measurements),
            "num_completions": len(record.backend.completions),
            "num_failures": len(record.backend.failures),
            "elapsed": float(record.backend.elapsed),
            "utilization": float(record.backend.utilization),
        }
    return out


def record_from_dict(data: dict) -> RunRecord:
    return RunRecord(
        method=data["method"],
        seed=int(data["seed"]),
        trace=trace_from_dict(data["trace"]),
        backend=None,
    )


def curve_to_dict(curve: AggregateCurve) -> dict:
    return {
        "method": curve.method,
        "grid": [float(g) for g in curve.grid],
        "mean": [_clean(v) for v in curve.mean],
        "lo": [_clean(v) for v in curve.lo],
        "hi": [_clean(v) for v in curve.hi],
        "finals": [_clean(v) for v in curve.finals],
    }


def curve_from_dict(data: dict) -> AggregateCurve:
    return AggregateCurve(
        method=data["method"],
        grid=np.array([float(g) for g in data["grid"]]),
        mean=np.array([_restore(v) for v in data["mean"]]),
        lo=np.array([_restore(v) for v in data["lo"]]),
        hi=np.array([_restore(v) for v in data["hi"]]),
        finals=[_restore(v) for v in data["finals"]],
    )


def save_records(path: str, records: list[RunRecord]) -> None:
    """Write a list of run records to a JSON file."""
    with open(path, "w") as fh:
        json.dump([record_to_dict(r) for r in records], fh, indent=1)


def load_records(path: str) -> list[RunRecord]:
    """Read run records back (backend logs are not restored)."""
    with open(path) as fh:
        return [record_from_dict(d) for d in json.load(fh)]
