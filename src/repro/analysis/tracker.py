"""Incumbent-over-time tracking with the paper's accounting schemes.

Appendix A.2 distinguishes two ways to credit progress to a tuner:

* **by rung** — the incumbent may update after every completed rung/job,
  using intermediate validation losses (what ASHA does natively,
  Section 3.3, and what makes "Hyperband (by rung)" beat Fabolas);
* **by bracket** — the incumbent only updates when a full SHA bracket
  completes (the accounting Klein et al. used, "Hyperband (by bracket)").

A trace is a right-continuous step function ``best value so far`` over
backend time.  Traces can be re-evaluated through an offline-validation
callback (e.g. the surrogate's noise-free loss, or "train the incumbent to
R"), reproducing the paper's offline evaluation framework.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..backend.trial_runner import BackendResult
from ..core.scheduler import Scheduler
from ..core.types import Config

__all__ = ["IncumbentTrace", "trace_incumbent"]


@dataclass
class IncumbentTrace:
    """A step function of the best-so-far value over time."""

    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)
    #: Parallel record of which trial held the incumbency.
    trial_ids: list[int] = field(default_factory=list)

    def append(self, time: float, value: float, trial_id: int) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError(f"times must be nondecreasing, got {time} after {self.times[-1]}")
        self.times.append(time)
        self.values.append(value)
        self.trial_ids.append(trial_id)

    def value_at(self, time: float) -> float:
        """Best value achieved at or before ``time`` (inf before the first)."""
        idx = np.searchsorted(self.times, time, side="right") - 1
        if idx < 0:
            return float("inf")
        return self.values[idx]

    def resample(self, grid: np.ndarray) -> np.ndarray:
        """Evaluate the step function on a time grid (vectorised)."""
        if not self.times:
            return np.full(len(grid), np.inf)
        idx = np.searchsorted(self.times, grid, side="right") - 1
        values = np.asarray(self.values)
        out = np.where(idx >= 0, values[np.maximum(idx, 0)], np.inf)
        return out

    @property
    def final(self) -> float:
        return self.values[-1] if self.values else float("inf")


def trace_incumbent(
    result: BackendResult,
    scheduler: Scheduler,
    *,
    accounting: str = "by_rung",
    evaluate: Callable[[Config, float], float] | None = None,
) -> IncumbentTrace:
    """Build the incumbent trace from a backend result.

    Parameters
    ----------
    accounting:
        ``"by_rung"`` updates on every measurement; ``"by_bracket"`` only
        when the scheduler's completed-bracket counter advances (schedulers
        without one degrade to never updating until the end, which is
        faithful: a bare SHA bracket reports once).
    evaluate:
        Optional offline validation ``(config, resource) -> value``; when
        given, the trace holds the evaluated value of the incumbent instead
        of its raw observed loss.
    """
    if accounting not in ("by_rung", "by_bracket"):
        raise ValueError(f"unknown accounting scheme {accounting!r}")
    trace = IncumbentTrace()
    best_loss = float("inf")
    best_key: tuple[int, float] | None = None
    last_brackets = 0
    for i, m in enumerate(result.measurements):
        is_nan = m.loss != m.loss
        if not is_nan and m.loss < best_loss:
            best_loss = m.loss
            best_key = (m.trial_id, m.resource)
            changed = True
        else:
            changed = False
        if accounting == "by_bracket":
            snapshot = result.bracket_snapshots[i]
            if snapshot is None or snapshot <= last_brackets:
                continue
            last_brackets = snapshot
        elif not changed:
            continue
        if best_key is None:
            continue
        trial_id, resource = best_key
        if evaluate is not None:
            value = evaluate(scheduler.trials[trial_id].config, resource)
        else:
            value = best_loss
        trace.append(m.time, value, trial_id)
    return trace
