"""Run results and multi-seed aggregation.

The paper's figures plot, per tuning method, the average incumbent quality
across 5-10 experiment trials with quartile or min/max bands.  This module
holds one searcher run (:class:`RunRecord`) and aggregates many of them on a
common time grid (:class:`AggregateCurve`), exactly the series the figure
benches print.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..backend.trial_runner import BackendResult
from .tracker import IncumbentTrace

__all__ = ["RunRecord", "AggregateCurve", "aggregate"]


@dataclass
class RunRecord:
    """One (method, seed) search run and its incumbent trace."""

    method: str
    seed: int
    trace: IncumbentTrace
    backend: BackendResult | None = None

    @property
    def final_value(self) -> float:
        return self.trace.final


@dataclass
class AggregateCurve:
    """Mean/band statistics of several traces on a common grid."""

    method: str
    grid: np.ndarray
    mean: np.ndarray
    lo: np.ndarray  # lower band (quartile or min)
    hi: np.ndarray  # upper band (quartile or max)
    finals: list[float] = field(default_factory=list)

    def time_to_reach(self, threshold: float) -> float | None:
        """First grid time at which the *mean* curve crosses ``threshold``."""
        below = np.nonzero(self.mean <= threshold)[0]
        if len(below) == 0:
            return None
        return float(self.grid[below[0]])

    @property
    def final_mean(self) -> float:
        return float(self.mean[-1])


def aggregate(
    method: str,
    records: list[RunRecord],
    grid: np.ndarray,
    *,
    band: str = "minmax",
) -> AggregateCurve:
    """Resample each record on ``grid`` and compute mean plus spread band.

    ``band`` is ``"minmax"`` (Figures 4-6, 9) or ``"quartile"`` (Figure 3).
    Infinite values (before a method's first report) are carried through the
    mean as the worst finite value seen on that grid point across records,
    so early-time averages stay meaningful.
    """
    if not records:
        raise ValueError("aggregate requires at least one record")
    if band not in ("minmax", "quartile"):
        raise ValueError(f"unknown band {band!r}")
    curves = np.stack([r.trace.resample(grid) for r in records])
    # Replace inf (not-yet-reported) by each column's worst finite value;
    # columns where nothing has reported yet stay at inf.
    finite_mask = np.isfinite(curves)
    lowered = np.where(finite_mask, curves, -np.inf)
    col_worst = lowered.max(axis=0)
    filled = np.where(finite_mask, curves, col_worst[None, :])
    filled[:, ~np.isfinite(col_worst)] = np.inf
    mean = filled.mean(axis=0)
    if band == "minmax":
        lo = filled.min(axis=0)
        hi = filled.max(axis=0)
    else:
        lo = np.percentile(filled, 25, axis=0)
        hi = np.percentile(filled, 75, axis=0)
    return AggregateCurve(
        method=method,
        grid=np.asarray(grid, dtype=float),
        mean=mean,
        lo=lo,
        hi=hi,
        finals=[r.final_value for r in records],
    )
