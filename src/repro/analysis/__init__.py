"""Result handling: incumbent traces, multi-seed aggregation, tables."""

from .ascii_chart import render_chart, sparkline
from .mispromotion import MispromotionStudy, mispromotion_curve, simulate_mispromotions
from .serialize import (
    curve_from_dict,
    curve_to_dict,
    load_records,
    record_from_dict,
    record_to_dict,
    save_records,
    trace_from_dict,
    trace_to_dict,
)
from .results import AggregateCurve, RunRecord, aggregate
from .stats import (
    MethodSummary,
    bootstrap_ci,
    final_values,
    summarize,
    time_to_target,
    times_to_target,
    win_matrix,
)
from .tables import format_value, render_series, render_table
from .tracker import IncumbentTrace, trace_incumbent

__all__ = [
    "AggregateCurve",
    "IncumbentTrace",
    "MethodSummary",
    "MispromotionStudy",
    "RunRecord",
    "aggregate",
    "bootstrap_ci",
    "curve_from_dict",
    "curve_to_dict",
    "format_value",
    "load_records",
    "record_from_dict",
    "record_to_dict",
    "render_chart",
    "save_records",
    "sparkline",
    "trace_from_dict",
    "trace_to_dict",
    "mispromotion_curve",
    "render_series",
    "render_table",
    "simulate_mispromotions",
    "summarize",
    "time_to_target",
    "times_to_target",
    "trace_incumbent",
    "win_matrix",
    "final_values",
]
