"""Statistics over run records: CIs, time-to-target, pairwise wins.

The paper reports means with min/max or quartile bands; reviewers usually
want a little more.  This module adds the standard machinery for comparing
tuners across seeds:

* bootstrap confidence intervals for final quality and time-to-target;
* per-record time-to-target extraction (right-censored at the horizon);
* a pairwise win matrix (how often does method A end better than B on the
  same seed?), the simplest paired comparison when seeds are shared.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .results import RunRecord

__all__ = [
    "bootstrap_ci",
    "time_to_target",
    "times_to_target",
    "final_values",
    "win_matrix",
    "MethodSummary",
    "summarize",
]


def bootstrap_ci(
    values: list[float],
    *,
    confidence: float = 0.95,
    num_resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile-bootstrap CI of the mean; censored values enter as given."""
    if not values:
        raise ValueError("bootstrap_ci requires at least one value")
    arr = np.asarray(values, dtype=float)
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, len(arr), size=(num_resamples, len(arr)))
    means = arr[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return float(np.quantile(means, alpha)), float(np.quantile(means, 1.0 - alpha))


def time_to_target(record: RunRecord, target: float, horizon: float) -> float:
    """First time the record's incumbent reaches ``target``, censored at
    ``horizon`` (the standard treatment for runs that never get there)."""
    for t, v in zip(record.trace.times, record.trace.values):
        if v <= target:
            return min(t, horizon)
    return horizon


def times_to_target(records: list[RunRecord], target: float, horizon: float) -> list[float]:
    return [time_to_target(r, target, horizon) for r in records]


def final_values(records: list[RunRecord]) -> list[float]:
    return [r.final_value for r in records]


def win_matrix(records_by_method: dict[str, list[RunRecord]]) -> dict[tuple[str, str], float]:
    """Fraction of shared seeds on which the row method ends strictly better.

    Only seeds present for *both* methods are compared (paired comparison).
    """
    finals = {
        method: {r.seed: r.final_value for r in records}
        for method, records in records_by_method.items()
    }
    out: dict[tuple[str, str], float] = {}
    for a, fa in finals.items():
        for b, fb in finals.items():
            if a == b:
                continue
            shared = sorted(set(fa) & set(fb))
            if not shared:
                out[(a, b)] = float("nan")
                continue
            wins = sum(1 for s in shared if fa[s] < fb[s])
            out[(a, b)] = wins / len(shared)
    return out


@dataclass(frozen=True)
class MethodSummary:
    """One method's headline numbers across seeds."""

    method: str
    num_seeds: int
    final_mean: float
    final_ci: tuple[float, float]
    time_to_target_mean: float | None
    time_to_target_ci: tuple[float, float] | None
    censored_runs: int


def summarize(
    records: list[RunRecord],
    *,
    target: float | None = None,
    horizon: float | None = None,
    confidence: float = 0.95,
) -> MethodSummary:
    """Headline statistics for one method's records."""
    if not records:
        raise ValueError("summarize requires at least one record")
    finals = final_values(records)
    method = records[0].method
    ttt_mean: float | None = None
    ttt_ci: tuple[float, float] | None = None
    censored = 0
    if target is not None:
        if horizon is None:
            raise ValueError("time-to-target needs a horizon for censoring")
        ttts = times_to_target(records, target, horizon)
        censored = sum(1 for t in ttts if t >= horizon)
        ttt_mean = float(np.mean(ttts))
        ttt_ci = bootstrap_ci(ttts, confidence=confidence)
    return MethodSummary(
        method=method,
        num_seeds=len(records),
        final_mean=float(np.mean(finals)),
        final_ci=bootstrap_ci(finals, confidence=confidence),
        time_to_target_mean=ttt_mean,
        time_to_target_ci=ttt_ci,
        censored_runs=censored,
    )
