"""Plain-text table rendering for the benchmark harness.

Every figure/table bench prints its reproduced rows and series through
these helpers, so the bench output is directly comparable to the paper.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

__all__ = ["render_table", "render_series", "format_value"]


def format_value(value: Any, precision: int = 4) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) or isinstance(value, np.floating):
        if value != value:
            return "nan"
        if value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else "-inf"
        if value == int(value) and abs(value) < 1e12:
            return str(int(value))
        return f"{value:.{precision}g}"
    return str(value)


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str | None = None
) -> str:
    """Render an aligned ASCII table."""
    text_rows = [[format_value(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append(fmt(["-" * w for w in widths]))
    lines.extend(fmt(row) for row in text_rows)
    return "\n".join(lines)


def render_series(
    grid: Sequence[float],
    named_series: dict[str, Sequence[float]],
    *,
    time_label: str = "time",
    title: str | None = None,
    max_points: int = 12,
) -> str:
    """Render time series as a table, thinning the grid to ``max_points``."""
    grid = list(grid)
    if len(grid) > max_points:
        idx = np.unique(np.linspace(0, len(grid) - 1, max_points).astype(int))
    else:
        idx = np.arange(len(grid))
    headers = [time_label] + list(named_series)
    rows = []
    for i in idx:
        rows.append([grid[i]] + [series[i] for series in named_series.values()])
    return render_table(headers, rows, title=title)
