"""Setup shim: enables legacy editable installs where the ``wheel`` package
is unavailable (``pip install -e . --no-use-pep517 --no-build-isolation``).
All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
