"""Figure 4: limited-scale distributed experiments (25 workers).

Runs ASHA, PBT, synchronous SHA (growing brackets when blocked) and BOHB on
the simulated 25-worker cluster for ~3.75 x time(R) — the paper's 150-minute
budget.  Expected shape:

* ASHA finds a good configuration in about the time needed to train a
  single model to R (benchmark 1);
* on benchmark 2 the high variance of per-configuration training time makes
  ASHA clearly better than synchronous SHA;
* ASHA evaluates on the order of a thousand configurations within the first
  time(R) (the "over 1000 configurations in just over 40 minutes" claim).
"""

from __future__ import annotations

import pytest
from _bench_utils import bench_jobs, chart, curves_to_series, emit

from repro.analysis import render_series, render_table
from repro.experiments.figures import figure4, sequential_benchmarks
from repro.experiments.runner import run_trials
from repro.experiments.methods import standard_methods

TRIALS = 5


@pytest.mark.parametrize("benchmark_name", ["cifar_convnet", "cifar_smallcnn"])
def test_fig4_distributed25(benchmark, benchmark_name):
    curves = benchmark.pedantic(
        figure4,
        args=(benchmark_name,),
        kwargs=dict(num_trials=TRIALS, n_jobs=bench_jobs()),
        rounds=1,
        iterations=1,
    )
    grid, series = curves_to_series(curves)
    spec = sequential_benchmarks()[benchmark_name]
    good = spec.good_loss
    rows = [
        [name, round(c.final_mean, 4), c.time_to_reach(good)]
        for name, c in curves.items()
    ]
    emit(
        f"fig4_distributed25_{benchmark_name}",
        render_series(
            grid,
            series,
            time_label="sim time",
            title=f"Figure 4 ({benchmark_name}): 25 workers, mean error vs time, {TRIALS} trials",
        )
        + "\n"
        + render_table(["method", "final mean", f"time to {good}"], rows)
        + "\n\n"
        + chart(curves, y_label="test error"),
    )
    reach = {name: c.time_to_reach(good) for name, c in curves.items()}
    time_r = spec.settings.max_resource
    # ASHA reaches a good configuration within a small multiple of time(R).
    assert reach["ASHA"] is not None
    assert reach["ASHA"] < 4.0 * time_r
    if benchmark_name == "cifar_smallcnn":
        # Straggler-heavy benchmark: sync SHA is clearly slower than ASHA.
        assert reach["SHA"] is None or reach["SHA"] > reach["ASHA"]


def test_fig4_asha_throughput_claim(benchmark):
    """"ASHA evaluated over 1000 configurations in just over 40 minutes
    with 25 workers" — 40 minutes ~ time(R) in simulator units."""
    spec = sequential_benchmarks()[
        "cifar_convnet"
    ]

    def run():
        factories = standard_methods(spec.settings, include=("ASHA",))
        return run_trials(
            "ASHA",
            factories["ASHA"],
            spec.make_objective,
            num_workers=25,
            time_limit=1.2 * spec.settings.max_resource,
            seeds=[0],
        )[0]

    record = benchmark.pedantic(run, rounds=1, iterations=1)
    num_configs = len({m.trial_id for m in record.backend.measurements})
    emit(
        "fig4_asha_throughput",
        f"ASHA configurations evaluated within 1.2 x time(R) on 25 workers: {num_configs}",
    )
    assert num_configs > 1000
