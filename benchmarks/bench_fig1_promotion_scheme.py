"""Figure 1 (right): the SHA promotion-scheme table.

Regenerates every row of the promotion scheme for ``n = 9, r = 1, R = 9,
eta = 3`` — bracket, rung, ``n_i``, ``r_i`` and the per-rung budget — and
checks them against the paper's printed values.
"""

from __future__ import annotations

from _bench_utils import emit

from repro.analysis import render_table
from repro.experiments.figures import figure1_rows

PAPER_TABLE = [
    # bracket, rung, n_i, r_i, total budget
    (0, 0, 9, 1, 9),
    (0, 1, 3, 3, 9),
    (0, 2, 1, 9, 9),
    (1, 0, 9, 3, 27),
    (1, 1, 3, 9, 27),
    (2, 0, 9, 9, 81),
]


def test_fig1_promotion_scheme(benchmark):
    rows = benchmark.pedantic(figure1_rows, rounds=1, iterations=1)
    got = [(r["bracket"], r["rung"], r["n_i"], int(r["r_i"]), int(r["total"])) for r in rows]
    assert got == PAPER_TABLE
    emit(
        "fig1_promotion_scheme",
        render_table(
            ["bracket s", "rung i", "n_i", "r_i", "total budget"],
            got,
            title="Figure 1 (right): SHA promotion scheme, n=9 r=1 R=9 eta=3",
        ),
    )
