"""Figure 7 (Appendix A.1): completions under stragglers and dropped jobs.

For each straggler standard deviation and drop probability, counts how many
configurations each of ASHA and synchronous SHA trains to the full resource
``R = 256`` within 2000 time units (``eta = 4, r = 1, n = 256``; the paper
runs 25 simulations, we default to 10).  Expected shape: ASHA completes more
configurations everywhere, and the gap widens with both straggler variance
and drop probability.
"""

from __future__ import annotations

from _bench_utils import bench_jobs, emit

from repro.analysis import render_table
from repro.experiments.figures import figure7

SIMS = 10


def test_fig7_stragglers(benchmark):
    rows = benchmark.pedantic(
        figure7, kwargs=dict(num_sims=SIMS, n_jobs=bench_jobs()), rounds=1, iterations=1
    )
    emit(
        "fig7_stragglers",
        render_table(
            ["method", "train std", "drop prob", "mean # trained to R", "std"],
            [
                [
                    r["method"],
                    r["train_std"],
                    r["drop_prob"],
                    round(r["mean_completed"], 2),
                    round(r["std_completed"], 2),
                ]
                for r in rows
            ],
            title=f"Figure 7: configurations trained to R in 2000 time units ({SIMS} sims)",
        ),
    )
    table = {(r["method"], r["train_std"], r["drop_prob"]): r["mean_completed"] for r in rows}
    stds = sorted({r["train_std"] for r in rows})
    probs = sorted({r["drop_prob"] for r in rows})
    # ASHA >= SHA in every cell (allowing tiny simulation noise).
    for std in stds:
        for p in probs:
            assert table[("ASHA", std, p)] >= table[("SHA", std, p)] - 1.0
    # Drops hurt SHA more than ASHA at the harshest setting.
    sha_drop = table[("SHA", stds[0], probs[0])] - table[("SHA", stds[0], probs[-1])]
    asha_drop = table[("ASHA", stds[0], probs[0])] - table[("ASHA", stds[0], probs[-1])]
    assert sha_drop > asha_drop - 1.0
