"""Ablations over ASHA's design choices (DESIGN.md section 5).

Not a paper figure — these isolate the knobs the paper discusses:

* **reduction factor eta**: Li et al. [2018] recommend aggressive rates;
  we sweep eta in {2, 4} at fixed budget;
* **early-stopping rate s**: higher s spends more per configuration; the
  paper's sequential results favour s = 0 (most aggressive);
* **checkpointing**: Section 3.2's claim that resume turns 2 x time(R)
  latency into ~1 x time(R) — measured on the full CIFAR surrogate, and as
  total completions at fixed budget.
"""

from __future__ import annotations

import numpy as np
from _bench_utils import emit

from repro.analysis import render_table
from repro.core import ASHA
from repro.experiments.figures import sequential_benchmarks
from repro.experiments.runner import run_trials

SPEC = sequential_benchmarks()["cifar_convnet"]
TIME_R = SPEC.settings.max_resource


def asha_factory(**kwargs):
    def factory(objective, rng):
        defaults = dict(
            min_resource=TIME_R / 256.0, max_resource=TIME_R, eta=4, early_stopping_rate=0
        )
        defaults.update(kwargs)
        return ASHA(objective.space, rng, **defaults)

    return factory


def sweep(variants: dict[str, dict], num_trials: int = 3) -> list[list]:
    rows = []
    for label, kwargs in variants.items():
        records = run_trials(
            label,
            asha_factory(**kwargs),
            SPEC.make_objective,
            num_workers=25,
            time_limit=3.0 * TIME_R,
            seeds=range(num_trials),
        )
        finals = [r.final_value for r in records]
        completions = [len(r.backend.completions) for r in records]
        rows.append(
            [label, round(float(np.mean(finals)), 4), round(float(np.mean(completions)), 1)]
        )
    return rows


def test_ablation_eta(benchmark):
    rows = benchmark.pedantic(
        sweep,
        args=({"eta=2": {"eta": 2}, "eta=4": {"eta": 4}},),
        rounds=1,
        iterations=1,
    )
    emit(
        "ablation_eta",
        render_table(
            ["variant", "mean final error", "mean configs at R"],
            rows,
            title="Ablation: ASHA reduction factor (25 workers, 3 x time(R))",
        ),
    )
    # Both are sane; aggressive halving is not worse.
    finals = {row[0]: row[1] for row in rows}
    assert finals["eta=4"] <= finals["eta=2"] + 0.02


def test_ablation_early_stopping_rate(benchmark):
    rows = benchmark.pedantic(
        sweep,
        args=({"s=0": {"early_stopping_rate": 0}, "s=2": {"early_stopping_rate": 2}},),
        rounds=1,
        iterations=1,
    )
    emit(
        "ablation_early_stopping_rate",
        render_table(
            ["variant", "mean final error", "mean configs at R"],
            rows,
            title="Ablation: ASHA early-stopping rate s (25 workers, 3 x time(R))",
        ),
    )
    finals = {row[0]: row[1] for row in rows}
    # Aggressive early stopping wins on this benchmark (Section 4.1's
    # observation that bracket 0 does the work).
    assert finals["s=0"] <= finals["s=2"] + 0.02


def test_ablation_checkpointing(benchmark):
    rows = benchmark.pedantic(
        sweep,
        args=(
            {
                "checkpointed": {"from_checkpoint": True},
                "from scratch": {"from_checkpoint": False},
            },
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        "ablation_checkpointing",
        render_table(
            ["variant", "mean final error", "mean configs at R"],
            rows,
            title="Ablation: checkpointed promotion vs retraining from scratch",
        ),
    )
    completions = {row[0]: row[2] for row in rows}
    # Checkpoint reuse trains more configurations to completion per budget.
    assert completions["checkpointed"] >= completions["from scratch"]
