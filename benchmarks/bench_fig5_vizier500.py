"""Figure 5: the large-scale benchmark — ASHA vs async Hyperband vs Vizier.

500 simulated workers tune the PTB LSTM surrogate for 6 x time(R) with the
Section 4.3 settings (``eta = 4, r = R/64``; async Hyperband loops brackets
``s = 0..3``; Vizier trains every proposal to R, perplexities capped at
1000).  Expected shape:

* ASHA and async Hyperband find good configurations in ~1 x time(R);
* Vizier produces nothing before 1 x time(R) (its first full trainings) and
  stays behind for the rest of the run — the heavy-tailed perplexities
  degrade its model;
* async Hyperband initially lags ASHA slightly, then catches up.
"""

from __future__ import annotations

from _bench_utils import bench_jobs, chart, curves_to_series, emit

from repro.analysis import render_series, render_table
from repro.experiments.figures import figure5
from repro.objectives import ptb_lstm

TRIALS = 2  # paper: 5; each trial simulates ~200k jobs


def test_fig5_vizier500(benchmark):
    curves = benchmark.pedantic(
        figure5, kwargs=dict(num_trials=TRIALS, n_jobs=bench_jobs()), rounds=1, iterations=1
    )
    grid, series = curves_to_series(curves)
    time_r = ptb_lstm.R
    thresholds = (85.0, 82.0)
    rows = [
        [name, round(c.final_mean, 2)] + [c.time_to_reach(t) for t in thresholds]
        for name, c in curves.items()
    ]
    emit(
        "fig5_vizier500",
        render_series(
            grid,
            series,
            time_label="sim time",
            title=f"Figure 5: 500 workers, PTB LSTM perplexity vs time ({TRIALS} trials)",
        )
        + "\n"
        + render_table(
            ["method", "final mean ppl"] + [f"time to {t}" for t in thresholds], rows
        )
        + "\n\n"
        + chart(curves, y_label="perplexity"),
    )
    asha = curves["ASHA"]
    hb = curves["Hyperband (Loop Brackets)"]
    vizier = curves["Vizier"]
    # ASHA reaches a good configuration within ~1.5 x time(R).
    assert asha.time_to_reach(85.0) is not None
    assert asha.time_to_reach(85.0) <= 1.5 * time_r
    # Vizier cannot report anything before its first full training completes.
    assert vizier.time_to_reach(1e9) >= time_r
    # ASHA beats Vizier to the good region and at the end of the run.
    assert asha.time_to_reach(82.0) < (vizier.time_to_reach(82.0) or float("inf"))
    assert asha.final_mean <= vizier.final_mean + 0.5
    # Async Hyperband tracks ASHA closely by the end (Section 4.3).
    assert abs(hb.final_mean - asha.final_mean) < 2.0
