"""Worker-churn robustness (extension of Appendix A.1's failure model).

Appendix A.1 models dropped *jobs*; real clusters also lose *workers* —
capacity disappears mid-job and returns later.  This ablation runs the same
A.1 workload under increasing churn and reports completions within the
budget, extending Figure 7's story: ASHA's asynchronous promotions degrade
gracefully while synchronous SHA's rung barriers amplify every lost worker.
"""

from __future__ import annotations

import numpy as np
from _bench_utils import emit

from repro.analysis import render_table
from repro.backend import SimulatedCluster
from repro.core import ASHA, SynchronousSHA
from repro.objectives import sim_workload

CHURN_RATES = (0.0, 0.01, 0.03)
DOWNTIME = 50.0
SIMS = 6
WORKERS = 10
BUDGET = 2000.0


def run_grid():
    rows = []
    for rate in CHURN_RATES:
        counts: dict[str, list[int]] = {"SHA": [], "ASHA": []}
        for sim in range(SIMS):
            objective = sim_workload.make_objective(seed_salt=sim)
            for name in ("SHA", "ASHA"):
                rng = np.random.default_rng(sim)
                if name == "SHA":
                    scheduler = SynchronousSHA(
                        objective.space,
                        rng,
                        n=256,
                        min_resource=1.0,
                        max_resource=256.0,
                        eta=4,
                        grow_brackets=True,
                    )
                else:
                    scheduler = ASHA(
                        objective.space, rng, min_resource=1.0, max_resource=256.0, eta=4
                    )
                cluster = SimulatedCluster(
                    WORKERS,
                    seed=31 * sim + (0 if name == "SHA" else 1),
                    churn_rate=rate,
                    churn_downtime=DOWNTIME,
                )
                result = cluster.run(scheduler, objective, time_limit=BUDGET)
                counts[name].append(result.num_completions())
        for name in ("SHA", "ASHA"):
            rows.append(
                [
                    name,
                    rate,
                    round(float(np.mean(counts[name])), 2),
                    round(float(np.std(counts[name])), 2),
                ]
            )
    return rows


def test_ablation_churn(benchmark):
    rows = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    emit(
        "ablation_churn",
        render_table(
            ["method", "churn rate", "mean # trained to R", "std"],
            rows,
            title=(
                f"Worker churn: completions in {BUDGET:.0f} units "
                f"({WORKERS} workers, downtime {DOWNTIME:.0f})"
            ),
        ),
    )
    table = {(r[0], r[1]): r[2] for r in rows}
    # Churn hurts everyone...
    assert table[("SHA", CHURN_RATES[-1])] <= table[("SHA", 0.0)]
    # ...but ASHA retains at least SHA-level throughput in every cell.
    for rate in CHURN_RATES:
        assert table[("ASHA", rate)] >= table[("SHA", rate)] - 1.0
