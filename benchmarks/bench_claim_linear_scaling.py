"""Section 4.2's scaling claim: ASHA speeds up linearly with workers.

"We also show that ASHA scales linearly with the number of workers" — and,
for benchmark 1, that the speedup saturates early ("we only achieve a 10x
speedup on 25 workers due to the relative simplicity of this task").

This bench sweeps the worker count on the *harder* benchmark 2 surrogate,
measures the mean time to reach a good configuration (test error 0.24),
and reports the speedup relative to one worker.  Expected shape: speedup
grows with workers, staying within a constant factor of ideal through 25
workers.
"""

from __future__ import annotations

import numpy as np
from _bench_utils import emit

from repro.analysis import render_table
from repro.analysis.stats import times_to_target
from repro.core import ASHA
from repro.experiments.figures import sequential_benchmarks
from repro.experiments.runner import run_trials

SPEC = sequential_benchmarks()["cifar_smallcnn"]
TIME_R = SPEC.settings.max_resource
TARGET = 0.24
WORKER_COUNTS = (1, 5, 25)
TRIALS = 3


def asha_factory(objective, rng):
    return ASHA(
        objective.space,
        rng,
        min_resource=TIME_R / 256,
        max_resource=TIME_R,
        eta=4,
    )


def run_sweep():
    horizon = {1: 40.0 * TIME_R, 5: 10.0 * TIME_R, 25: 4.0 * TIME_R}
    out = {}
    for workers in WORKER_COUNTS:
        records = run_trials(
            f"ASHA x{workers}",
            asha_factory,
            SPEC.make_objective,
            num_workers=workers,
            time_limit=horizon[workers],
            seeds=range(TRIALS),
        )
        ttts = times_to_target(records, TARGET, horizon[workers])
        out[workers] = float(np.mean(ttts))
    return out


def test_claim_linear_scaling(benchmark):
    mean_times = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    base = mean_times[WORKER_COUNTS[0]]
    rows = [
        [w, round(mean_times[w], 0), round(base / mean_times[w], 2), w]
        for w in WORKER_COUNTS
    ]
    emit(
        "claim_linear_scaling",
        render_table(
            ["workers", f"mean time to {TARGET}", "speedup", "ideal"],
            rows,
            title="Section 4.2: ASHA speedup vs worker count (benchmark 2)",
        ),
    )
    speedups = {w: base / mean_times[w] for w in WORKER_COUNTS}
    # Speedups grow with workers...
    assert speedups[5] > 1.5
    assert speedups[25] > speedups[5]
    # ...and stay within a constant factor of ideal at 25 workers (the paper
    # reports linear speedups on this benchmark).
    assert speedups[25] > 25 / 4.0
