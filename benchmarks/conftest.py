"""Benchmark-suite pytest hooks: the shared ``--jobs`` parallelism knob.

``pytest benchmarks/... --jobs 4`` fans every figure driver's independent
``(method, seed)`` experiment trials out across 4 processes (``--jobs -1``
uses all cores).  The value is published through the ``REPRO_JOBS``
environment variable, the same knob :func:`repro.experiments.parallel
.resolve_jobs` consults, so it reaches every ``run_trials``/``run_methods``
call the bench makes — parallel output is identical to sequential output,
only faster.
"""

from __future__ import annotations

import os

from repro.experiments.parallel import JOBS_ENV_VAR


def pytest_addoption(parser):
    parser.addoption(
        "--jobs",
        type=int,
        default=None,
        help="process count for experiment-trial fan-out (-1 = all cores; "
        f"defaults to ${JOBS_ENV_VAR} or 1)",
    )


def pytest_configure(config):
    jobs = config.getoption("--jobs", default=None)
    if jobs is not None:
        os.environ[JOBS_ENV_VAR] = str(jobs)
