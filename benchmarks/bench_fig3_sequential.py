"""Figure 3: sequential experiments (1 worker) on the two CIFAR-10 benchmarks.

Runs SHA, Hyperband, Random, PBT, ASHA, asynchronous Hyperband and BOHB on
the surrogate versions of both Section 4.1 benchmarks and prints the
average-test-error-vs-time series.  Expected shape (paper):

* benchmark 1: Hyperband and all SHA variants clearly beat PBT and Random;
* benchmark 2: SHA/ASHA/BOHB/PBT cluster together, beating Random, with the
  Hyperband variants slightly behind;
* asynchrony costs ASHA essentially nothing relative to SHA.
"""

from __future__ import annotations

import pytest
from _bench_utils import bench_jobs, chart, curves_to_series, emit

from repro.analysis import render_series, render_table
from repro.experiments.figures import figure3

TRIALS = 5
HORIZON = 60.0  # multiples of time(R), matching the paper's ~2500 minutes


@pytest.mark.parametrize("benchmark_name", ["cifar_convnet", "cifar_smallcnn"])
def test_fig3_sequential(benchmark, benchmark_name):
    curves = benchmark.pedantic(
        figure3,
        args=(benchmark_name,),
        kwargs=dict(num_trials=TRIALS, horizon_multiple=HORIZON, n_jobs=bench_jobs()),
        rounds=1,
        iterations=1,
    )
    grid, series = curves_to_series(curves)
    emit(
        f"fig3_sequential_{benchmark_name}",
        render_series(
            grid,
            series,
            time_label="sim time",
            title=f"Figure 3 ({benchmark_name}): mean test error vs time, {TRIALS} trials",
        )
        + "\n"
        + render_table(
            ["method", "final mean error"],
            [[name, round(c.final_mean, 4)] for name, c in curves.items()],
        )
        + "\n\n"
        + chart(curves, y_label="test error"),
    )
    # Shape assertions (coarse, seed-robust).
    final = {name: c.final_mean for name, c in curves.items()}
    assert final["ASHA"] < final["Random"]
    assert final["SHA"] < final["Random"]
    assert final["BOHB"] <= final["Random"] + 0.005
    if benchmark_name == "cifar_convnet":
        # "Hyperband and all variants of SHA outperform PBT" (Section 4.1).
        assert final["ASHA"] < final["PBT"]
        assert final["SHA"] < final["PBT"]
    # Asynchrony does not consequentially hurt ASHA vs SHA.
    assert final["ASHA"] < final["SHA"] + 0.02
