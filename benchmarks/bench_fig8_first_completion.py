"""Figure 8 (Appendix A.1): time until the first configuration reaches R.

Same simulated workload as Figure 7; measures how long each scheduler takes
to train its first configuration to the full resource under stragglers and
drops (censored at the 2000-unit budget).  Expected shape: ASHA's first
completion is earlier, and the gap grows with straggler variance and drop
probability — synchronous SHA's rung barriers wait for the slowest job.
"""

from __future__ import annotations

import numpy as np
from _bench_utils import bench_jobs, emit

from repro.analysis import render_table
from repro.experiments.figures import figure8

SIMS = 10


def test_fig8_first_completion(benchmark):
    rows = benchmark.pedantic(
        figure8, kwargs=dict(num_sims=SIMS, n_jobs=bench_jobs()), rounds=1, iterations=1
    )
    emit(
        "fig8_first_completion",
        render_table(
            ["method", "train std", "drop prob", "mean time to first R", "std"],
            [
                [
                    r["method"],
                    r["train_std"],
                    r["drop_prob"],
                    round(r["mean_first_completion"], 1),
                    round(r["std_first_completion"], 1),
                ]
                for r in rows
            ],
            title=f"Figure 8: time until first configuration trained to R ({SIMS} sims)",
        ),
    )
    table = {
        (r["method"], r["train_std"], r["drop_prob"]): r["mean_first_completion"]
        for r in rows
    }
    stds = sorted({r["train_std"] for r in rows})
    probs = sorted({r["drop_prob"] for r in rows})
    # Averaged over the whole grid, ASHA is faster to the first completion.
    asha_mean = np.mean([table[("ASHA", s, p)] for s in stds for p in probs])
    sha_mean = np.mean([table[("SHA", s, p)] for s in stds for p in probs])
    assert asha_mean < sha_mean
    # At the harshest cell the gap is substantial.
    worst = (stds[-1], probs[-1])
    assert table[("ASHA", *worst)] < table[("SHA", *worst)] * 1.05
