"""Shared helpers for the figure benches.

Each bench regenerates one paper artefact, prints the reproduced rows or
series, and archives them under ``benchmarks/results/<name>.txt`` so the
tables survive pytest's output capture.
"""

from __future__ import annotations

import os

import numpy as np

from repro.analysis import render_chart
from repro.experiments.parallel import resolve_jobs

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def bench_jobs() -> int:
    """The bench suite's trial-parallelism level.

    Set with ``pytest benchmarks/... --jobs N`` (see ``benchmarks/conftest``)
    or the ``REPRO_JOBS`` environment variable; defaults to 1, and parallel
    runs produce output identical to sequential ones.
    """
    return resolve_jobs(None)


def emit(name: str, text: str) -> None:
    """Print a reproduced artefact and archive it."""
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")


def curves_to_series(curves: dict) -> tuple[list[float], dict[str, list[float]]]:
    """Flatten AggregateCurve mapping into (grid, name -> mean series)."""
    grid = None
    series = {}
    for name, curve in curves.items():
        grid = list(curve.grid)
        series[name] = [round(float(v), 4) if np.isfinite(v) else float("inf") for v in curve.mean]
    return grid, series


def chart(curves: dict, *, y_label: str = "loss") -> str:
    """ASCII chart of the mean curves (crossovers visible at a glance)."""
    grid, series = curves_to_series(curves)
    return render_chart(grid, series, y_label=y_label)
