"""The perf-regression microbenchmark suite.

Times the three layers the paper's large-scale regime leans on — raw
scheduler decisions, the discrete-event simulator, and multi-trial
experiment runs — and writes a stable-schema ``BENCH_perf.json``:

* ``scheduler_asha_ops`` — ASHA ``next_job``/``report``/``is_done`` cycles
  per second, driven directly with synthetic losses (no simulator).  This
  is where the promotion-scan caching shows up.
* ``simulator_events`` / ``simulator_churn_events`` — simulated job
  completions per second on the PTB LSTM surrogate at 100 workers, without
  and with worker churn.  This is where the event queue, churn victim
  selection, and config-seed caching show up.
* ``end_to_end_asha`` — a multi-seed ASHA experiment at (reduced)
  Figure-5 scale through :func:`repro.experiments.runner.run_trials`,
  sequential.
* ``parallel_speedup`` — the same experiment with ``n_jobs=2``, reported
  as a speedup factor.  Informational only (not gated): it measures core
  count more than code quality.

Usage::

    PYTHONPATH=src python benchmarks/perf/run_perf.py [--quick] \
        [--output BENCH_perf.json]

``--quick`` shrinks every workload for CI smoke runs; the schema (and the
normalisation that makes scores comparable across machines) is identical in
both modes.  Compare two reports with ``check_regression.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time

import numpy as np

from repro.backend.simulation import SimulatedCluster
from repro.core import ASHA
from repro.experiments.runner import run_trials
from repro.objectives import ptb_lstm
from repro.objectives.surrogate import seeded_uniform

from perf_utils import SCHEMA_VERSION, benchmark_entry, calibrate, time_call

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "..", "BENCH_perf.json"
)


# ----------------------------------------------------------- microbenches


def bench_scheduler_ops(num_jobs: int) -> tuple[float, int]:
    """(seconds, jobs dispatched) driving ASHA directly with synthetic losses."""
    objective = ptb_lstm.make_objective(seed_salt=0)
    rng = np.random.default_rng(0)
    r_max = ptb_lstm.R
    scheduler = ASHA(
        objective.space, rng, min_resource=r_max / 64.0, max_resource=r_max, eta=4
    )
    start = time.perf_counter()
    dispatched = 0
    for _ in range(num_jobs):
        if scheduler.is_done():
            break
        job = scheduler.next_job()
        if job is None:
            break
        # Synthetic loss keyed by trial id and rung: deterministic, free.
        scheduler.report(job, 1.0 + seeded_uniform(job.trial_id, float(job.rung)))
        dispatched += 1
    return time.perf_counter() - start, dispatched


def _simulate(num_workers: int, horizon: float, churn: bool) -> int:
    objective = ptb_lstm.make_objective(seed_salt=0)
    rng = np.random.default_rng(0)
    r_max = ptb_lstm.R
    scheduler = ASHA(
        objective.space, rng, min_resource=r_max / 64.0, max_resource=r_max, eta=4
    )
    kwargs = dict(straggler_std=0.2, drop_probability=0.002)
    if churn:
        kwargs.update(churn_rate=2.0 / r_max, churn_downtime=r_max / 20.0)
    cluster = SimulatedCluster(num_workers, seed=7, **kwargs)
    result = cluster.run(scheduler, objective, time_limit=horizon * r_max)
    return len(result.measurements)


def bench_simulator(num_workers: int, horizon: float, *, churn: bool) -> tuple[float, int]:
    """(seconds, completed measurements) of one simulated ASHA run."""
    seconds, measurements = time_call(lambda: _simulate(num_workers, horizon, churn))
    return seconds, measurements


def _end_to_end(num_workers: int, horizon: float, seeds: range, n_jobs: int) -> int:
    r_max = ptb_lstm.R

    def make_scheduler(objective, rng):
        return ASHA(
            objective.space, rng, min_resource=r_max / 64.0, max_resource=r_max, eta=4
        )

    records = run_trials(
        "ASHA",
        make_scheduler,
        lambda seed: ptb_lstm.make_objective(seed_salt=seed),
        num_workers=num_workers,
        time_limit=horizon * r_max,
        seeds=seeds,
        n_jobs=n_jobs,
    )
    return sum(len(r.backend.measurements) for r in records)


# ------------------------------------------------------------------- main


def run_suite(quick: bool) -> dict:
    """Run every microbench and return the BENCH_perf.json document."""
    mode = "quick" if quick else "full"
    scheduler_jobs = 20_000 if quick else 100_000
    sim_workers = 50 if quick else 100
    sim_horizon = 1.0 if quick else 2.0
    e2e_workers = 50 if quick else 200
    e2e_horizon = 1.0 if quick else 2.0
    e2e_seeds = range(2 if quick else 3)

    print(f"[perf] calibrating ({mode} mode)...", flush=True)
    calibration = calibrate(iterations=500_000 if quick else 2_000_000)

    benchmarks: dict[str, dict] = {}

    print("[perf] scheduler_asha_ops...", flush=True)
    seconds, dispatched = bench_scheduler_ops(scheduler_jobs)
    benchmarks["scheduler_asha_ops"] = benchmark_entry(
        dispatched / seconds,
        "jobs/s",
        higher_is_better=True,
        calibration_ops_per_s=calibration,
        meta={"jobs": dispatched},
    )

    print("[perf] simulator_events...", flush=True)
    seconds, measurements = bench_simulator(sim_workers, sim_horizon, churn=False)
    benchmarks["simulator_events"] = benchmark_entry(
        measurements / seconds,
        "measurements/s",
        higher_is_better=True,
        calibration_ops_per_s=calibration,
        meta={"workers": sim_workers, "measurements": measurements},
    )

    print("[perf] simulator_churn_events...", flush=True)
    seconds, measurements = bench_simulator(sim_workers, sim_horizon, churn=True)
    benchmarks["simulator_churn_events"] = benchmark_entry(
        measurements / seconds,
        "measurements/s",
        higher_is_better=True,
        calibration_ops_per_s=calibration,
        meta={"workers": sim_workers, "measurements": measurements},
    )

    print("[perf] end_to_end_asha (sequential)...", flush=True)
    seconds, _ = time_call(lambda: _end_to_end(e2e_workers, e2e_horizon, e2e_seeds, 1))
    benchmarks["end_to_end_asha"] = benchmark_entry(
        seconds,
        "s",
        higher_is_better=False,
        calibration_ops_per_s=calibration,
        meta={"workers": e2e_workers, "seeds": len(e2e_seeds)},
    )
    sequential_seconds = seconds

    print("[perf] parallel_speedup (n_jobs=2)...", flush=True)
    seconds, _ = time_call(lambda: _end_to_end(e2e_workers, e2e_horizon, e2e_seeds, 2))
    benchmarks["parallel_speedup"] = benchmark_entry(
        sequential_seconds / seconds,
        "x",
        higher_is_better=True,
        # Speedup is already a machine-relative ratio: normalise by 1, and
        # never gate on it (a 1-core runner legitimately reports ~1x).
        calibration_ops_per_s=1.0,
        meta={"n_jobs": 2, "gated": False},
    )

    return {
        "schema_version": SCHEMA_VERSION,
        "mode": mode,
        "python": platform.python_version(),
        "calibration_ops_per_s": calibration,
        "benchmarks": benchmarks,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="reduced CI-smoke workloads")
    parser.add_argument("--output", default=DEFAULT_OUTPUT, help="report path")
    args = parser.parse_args(argv)

    report = run_suite(args.quick)
    output = os.path.abspath(args.output)
    with open(output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[perf] wrote {output}")
    for name, entry in report["benchmarks"].items():
        print(f"  {name:24s} {entry['value']:>12.2f} {entry['unit']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
