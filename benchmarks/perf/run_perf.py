"""The perf-regression microbenchmark suite.

Times the three layers the paper's large-scale regime leans on — raw
scheduler decisions, the discrete-event simulator, and multi-trial
experiment runs — and writes a stable-schema ``BENCH_perf.json``:

* ``scheduler_asha_ops`` — ASHA ``next_job``/``report``/``is_done`` cycles
  per second, driven directly with synthetic losses (no simulator).  This
  is where the promotion-scan caching shows up.
* ``scheduler_asha_ops_batched`` — the same workload through the batched
  surface (``next_job_batch``/``report_batch``, batch 32): what a backend
  filling many free workers per ask actually pays.  The gap between this
  and ``scheduler_asha_ops`` is the per-call overhead batching amortises.
* ``simulator_events`` / ``simulator_churn_events`` — simulated job
  completions per second on the PTB LSTM surrogate at 100 workers, without
  and with worker churn.  This is where the event queue, churn victim
  selection, and config-seed caching show up.
* ``simulator_events_calendar`` — the calendar-queue ``EventQueue`` alone
  under a hold-model churn (pop one event, push its successor) at a deep
  pending set, isolating the simulator core from scheduler and surrogate
  costs.
* ``end_to_end_asha`` — a multi-seed ASHA experiment at (reduced)
  Figure-5 scale through :func:`repro.experiments.runner.run_trials`,
  sequential.
* ``parallel_speedup`` / ``parallel_speedup_4`` / ``parallel_speedup_8`` —
  an 8-seed run of the same experiment with ``n_jobs`` 2/4/8, reported as
  speedup over its own sequential timing.  ``parallel_speedup`` carries a
  hard CI floor (``meta.floor``, gated); the 4/8-job entries are recorded
  for the docs table.  On machines with fewer than 4 cores the speedups are
  *skipped with a reason* (``meta.skipped``) rather than mis-gated —
  ``meta.cpu_count`` always records what the machine had.
* ``multiplex_studies`` — the service regime: one ``StudyMultiplexer``
  hosting 10k (quick: 1k) concurrent crash-durable journaled studies in a
  single process, reported as aggregate ask+tell operations per second.
* ``observability_overhead`` — the runtime-probe cost contract: a
  Study-driven scheduler workload and a small multiplexed workload are each
  timed back to back with the probe registry uninstalled and installed
  (paired, interleaved, best-of-k), and the entry's value is the *worst*
  enabled/disabled slowdown ratio.  Carries a hard gated ``meta.ceiling``
  of 1.03 — enabled probes must cost at most 3% on the instrumented hot
  paths, and the disabled paths (a pointer load + branch per site) are
  bounded above by the same number.
* ``multiplex_speedup`` — the same 1k-study workload through the naive
  loop-per-study baseline (each study drives its own loop and fsyncs its
  own journal on a per-study cadence) divided by the multiplexer's time
  (group-commit WAL: one fsync per commit window).  Both sides provide the
  same bounded-crash-window durability and produce byte-identical journals
  (checked inside the benchmark).  Carries a hard gated floor of 2.0x.

Usage::

    PYTHONPATH=src python benchmarks/perf/run_perf.py [--quick] \
        [--output BENCH_perf.json] [--only NAME[,NAME...]]

``--quick`` shrinks every workload for CI smoke runs; the schema (and the
normalisation that makes scores comparable across machines) is identical in
both modes.  ``--only`` runs a subset by name (substring match, e.g.
``--only multiplex`` for the load-smoke CI job) — the report then contains
just those entries, which ``check_regression.py`` treats as a partial
report (missing-vs-baseline rows are benign).  Compare two reports with
``check_regression.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time

import numpy as np

from repro.backend.events import EventQueue
from repro.backend.simulation import SimulatedCluster
from repro.core import ASHA
from repro.experiments.runner import run_trials
from repro.experiments.toys import toy_objective, toy_space
from repro.objectives import ptb_lstm
from repro.objectives.surrogate import seeded_uniform
from repro.study import Journal, Study, StudyMultiplexer

from perf_utils import SCHEMA_VERSION, benchmark_entry, calibrate, skipped_entry, time_call

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "..", "BENCH_perf.json"
)


# ----------------------------------------------------------- microbenches


def bench_scheduler_ops(num_jobs: int) -> tuple[float, int]:
    """(seconds, jobs dispatched) driving ASHA directly with synthetic losses."""
    objective = ptb_lstm.make_objective(seed_salt=0)
    rng = np.random.default_rng(0)
    r_max = ptb_lstm.R
    scheduler = ASHA(
        objective.space, rng, min_resource=r_max / 64.0, max_resource=r_max, eta=4
    )
    start = time.perf_counter()
    dispatched = 0
    for _ in range(num_jobs):
        if scheduler.is_done():
            break
        job = scheduler.next_job()
        if job is None:
            break
        # Synthetic loss keyed by trial id and rung: deterministic, free.
        scheduler.report(job, 1.0 + seeded_uniform(job.trial_id, float(job.rung)))
        dispatched += 1
    return time.perf_counter() - start, dispatched


def bench_scheduler_ops_batched(num_jobs: int, batch: int = 32) -> tuple[float, int]:
    """(seconds, jobs dispatched) driving ASHA through the batched surface.

    Same seeded workload as :func:`bench_scheduler_ops` — the batched API
    contract guarantees an identical job stream — but asked and reported
    ``batch`` jobs at a time, the way a backend filling free workers does.
    """
    objective = ptb_lstm.make_objective(seed_salt=0)
    rng = np.random.default_rng(0)
    r_max = ptb_lstm.R
    scheduler = ASHA(
        objective.space, rng, min_resource=r_max / 64.0, max_resource=r_max, eta=4
    )
    start = time.perf_counter()
    dispatched = 0
    while dispatched < num_jobs:
        if scheduler.is_done():
            break
        jobs = scheduler.next_job_batch(min(batch, num_jobs - dispatched))
        if not jobs:
            break
        scheduler.report_batch(
            [(job, 1.0 + seeded_uniform(job.trial_id, float(job.rung))) for job in jobs]
        )
        dispatched += len(jobs)
    return time.perf_counter() - start, dispatched


def bench_event_queue(num_ops: int, pending: int) -> tuple[float, int]:
    """(seconds, operations) of hold-model churn on the calendar EventQueue.

    Seeds ``pending`` events, then repeatedly pops the earliest and pushes
    its successor at ``popped.time + delta`` — the classic *hold* workload
    every event-driven simulator core reduces to.  Deltas are precomputed so
    the timed region is queue operations only; each hold counts as two
    operations (one pop, one push).
    """
    rng = np.random.default_rng(3)
    deltas = [float(d) for d in rng.exponential(1.0, size=8192)]
    queue = EventQueue()
    for t in rng.uniform(0.0, 50.0, size=pending):
        queue.push(float(t), "seed")
    n_deltas = len(deltas)
    start = time.perf_counter()
    for i in range(num_ops):
        event = queue.pop()
        queue.push(event.time + deltas[i % n_deltas], "hold")
    return time.perf_counter() - start, num_ops * 2


def _simulate(num_workers: int, horizon: float, churn: bool) -> int:
    objective = ptb_lstm.make_objective(seed_salt=0)
    rng = np.random.default_rng(0)
    r_max = ptb_lstm.R
    scheduler = ASHA(
        objective.space, rng, min_resource=r_max / 64.0, max_resource=r_max, eta=4
    )
    kwargs = dict(straggler_std=0.2, drop_probability=0.002)
    if churn:
        kwargs.update(churn_rate=2.0 / r_max, churn_downtime=r_max / 20.0)
    cluster = SimulatedCluster(num_workers, seed=7, **kwargs)
    result = cluster.run(scheduler, objective, time_limit=horizon * r_max)
    return len(result.measurements)


def bench_simulator(num_workers: int, horizon: float, *, churn: bool) -> tuple[float, int]:
    """(seconds, completed measurements) of one simulated ASHA run."""
    seconds, measurements = time_call(lambda: _simulate(num_workers, horizon, churn))
    return seconds, measurements


def _end_to_end(num_workers: int, horizon: float, seeds: range, n_jobs: int) -> int:
    r_max = ptb_lstm.R

    def make_scheduler(objective, rng):
        return ASHA(
            objective.space, rng, min_resource=r_max / 64.0, max_resource=r_max, eta=4
        )

    records = run_trials(
        "ASHA",
        make_scheduler,
        lambda seed: ptb_lstm.make_objective(seed_salt=seed),
        num_workers=num_workers,
        time_limit=horizon * r_max,
        seeds=seeds,
        n_jobs=n_jobs,
    )
    return sum(len(r.backend.measurements) for r in records)


#: Seeds for the speedup suite — divisible by every measured n_jobs so the
#: chunked dispatcher hands each worker equally-sized spans.
SPEEDUP_SEEDS = range(8)

#: (benchmark name, n_jobs, cores required, hard floor enforced by CI).
#: Only the 2-job floor is gated — the 4/8-job entries feed the docs table
#: and record their target floors informationally (ISSUE acceptance: the CI
#: gate enforces the n_jobs=2 floor).
SPEEDUP_BENCHES = [
    ("parallel_speedup", 2, 4, 1.3, True),
    ("parallel_speedup_4", 4, 4, None, False),
    ("parallel_speedup_8", 8, 8, 2.5, False),
]


def bench_parallel_speedups(num_workers: int, horizon: float) -> dict[str, dict]:
    """The ``n_jobs ∈ {2, 4, 8}`` speedup entries, skipping what this machine
    cannot measure.

    One 8-seed sequential run is timed as the reference, then each parallel
    configuration against it.  Runners with fewer than 4 cores cannot
    measure any speedup honestly (fork overhead dominates and the gate would
    mis-fire), so every entry below the core requirement is recorded as
    skipped with the machine's ``cpu_count`` — never silently mis-gated.
    """
    cpu_count = os.cpu_count() or 1
    entries: dict[str, dict] = {}
    measurable = [b for b in SPEEDUP_BENCHES if cpu_count >= b[2]]
    sequential_seconds = None
    if measurable:
        print(f"[perf] parallel speedup reference ({len(SPEEDUP_SEEDS)} seeds, sequential)...",
              flush=True)
        sequential_seconds, _ = time_call(
            lambda: _end_to_end(num_workers, horizon, SPEEDUP_SEEDS, 1)
        )
    for name, n_jobs, min_cores, floor, gated in SPEEDUP_BENCHES:
        meta: dict = {"n_jobs": n_jobs, "cpu_count": cpu_count, "gated": gated}
        if floor is not None:
            meta["floor"] = floor
        if cpu_count < min_cores:
            entries[name] = skipped_entry(
                "x",
                higher_is_better=True,
                reason=f"requires >= {min_cores} cores, machine has {cpu_count}",
                meta=meta,
            )
            print(f"[perf] {name} skipped ({cpu_count} cores < {min_cores})", flush=True)
            continue
        print(f"[perf] {name} (n_jobs={n_jobs})...", flush=True)
        seconds, _ = time_call(lambda: _end_to_end(num_workers, horizon, SPEEDUP_SEEDS, n_jobs))
        entries[name] = benchmark_entry(
            sequential_seconds / seconds,
            "x",
            higher_is_better=True,
            # Speedup is already a machine-relative ratio: normalise by 1.
            calibration_ops_per_s=1.0,
            meta=meta,
        )
    return entries


#: Per-study work in the multiplex benchmarks: small on purpose.  The
#: service regime is many mostly-idle studies, where per-study overhead
#: (driver loop, journal durability) dominates — exactly what the
#: multiplexer amortises.
_MUX_WORKERS = 2
_MUX_MEASUREMENTS = 3
#: The naive baseline's durability cadence: fsync its journal every this
#: many records, bounding the crash window the same way the multiplexer's
#: commit window does.
_BASELINE_FSYNC_EVERY = 16


class _CadenceJournal(Journal):
    """A solo journal made crash-durable every ``_BASELINE_FSYNC_EVERY``
    appends — the loop-per-study baseline's equivalent of the multiplexer's
    per-window group commit.  Same bounded-loss guarantee, paid with one
    fsync per study per cadence instead of one per window for all studies.
    """

    def append(self, record):
        super().append(record)
        self._cadence = getattr(self, "_cadence", 0) + 1
        if self._cadence >= _BASELINE_FSYNC_EVERY:
            self._cadence = 0
            self._file.flush()
            os.fsync(self._file.fileno())

    def append_batch(self, records):
        super().append_batch(records)
        self._cadence = getattr(self, "_cadence", 0) + len(records)
        if self._cadence >= _BASELINE_FSYNC_EVERY:
            self._cadence = 0
            self._file.flush()
            os.fsync(self._file.fileno())


def _mux_scheduler(seed: int):
    return ASHA(
        toy_space(), np.random.default_rng(seed), min_resource=1.0, max_resource=9.0, eta=3
    )


def _run_studies_baseline(directory: str, num_studies: int) -> tuple[float, int]:
    """(seconds, ask+tell ops) of the naive loop-per-study driver."""
    objective = toy_objective()
    items = [
        (
            Study(_mux_scheduler(i), journal=_CadenceJournal(os.path.join(directory, f"solo_{i}.jsonl"))),
            SimulatedCluster(_MUX_WORKERS, seed=10_000 + i),
        )
        for i in range(num_studies)
    ]
    start = time.perf_counter()
    ops = 0
    for study, cluster in items:
        result = cluster.run(
            study, objective, time_limit=200.0, max_measurements=_MUX_MEASUREMENTS
        )
        ops += result.jobs_dispatched + len(result.measurements)
    return time.perf_counter() - start, ops


def _run_studies_multiplexed(directory: str, num_studies: int) -> tuple[float, int]:
    """(seconds, ask+tell ops) of the same studies through the multiplexer."""
    objective = toy_objective()
    mux = StudyMultiplexer(
        commit_interval=256, wal_path=os.path.join(directory, "journals.wal")
    )
    for i in range(num_studies):
        study = Study(
            _mux_scheduler(i),
            journal=Journal(os.path.join(directory, f"mux_{i}.jsonl"), writer=mux.journal_writer),
        )
        mux.add(
            study,
            objective,
            cluster=SimulatedCluster(_MUX_WORKERS, seed=10_000 + i),
            time_limit=200.0,
            max_measurements=_MUX_MEASUREMENTS,
        )
    start = time.perf_counter()
    results = mux.run()
    seconds = time.perf_counter() - start
    return seconds, sum(r.jobs_dispatched + len(r.measurements) for r in results)


def bench_multiplex_studies(num_studies: int) -> tuple[float, int]:
    """(seconds, ask+tell ops) hosting ``num_studies`` concurrent durable
    studies in one multiplexer — the capacity benchmark."""
    with tempfile.TemporaryDirectory(prefix="perf_mux_") as directory:
        return _run_studies_multiplexed(directory, num_studies)


def bench_multiplex_speedup(num_studies: int) -> float:
    """Multiplexer speedup over the loop-per-study baseline, same durability.

    Byte-identity between the two sides is asserted on sampled journals —
    the benchmark refuses to report a speedup for diverging runs.
    """
    with tempfile.TemporaryDirectory(prefix="perf_mux_") as directory:
        base_seconds, base_ops = _run_studies_baseline(directory, num_studies)
        mux_seconds, mux_ops = _run_studies_multiplexed(directory, num_studies)
        if base_ops != mux_ops:
            raise RuntimeError(
                f"multiplex_speedup: op counts diverged (baseline {base_ops}, "
                f"multiplexed {mux_ops})"
            )
        for i in (0, num_studies // 2, num_studies - 1):
            with open(os.path.join(directory, f"solo_{i}.jsonl"), "rb") as fh:
                solo_bytes = fh.read()
            with open(os.path.join(directory, f"mux_{i}.jsonl"), "rb") as fh:
                mux_bytes = fh.read()
            if solo_bytes != mux_bytes:
                raise RuntimeError(
                    f"multiplex_speedup: journal {i} diverged between baseline "
                    "and multiplexed runs — byte-identity oracle violated"
                )
        return base_seconds / mux_seconds


#: The observability acceptance bar: enabled probes may slow an
#: instrumented hot path by at most this factor (CI-gated via
#: ``meta.ceiling``).
_OBS_OVERHEAD_CEILING = 1.03


def _study_scheduler_workload(num_jobs: int) -> int:
    """Batched ask/tell cycles through the instrumented ``Study`` surface."""
    study = Study(
        ASHA(
            toy_space(),
            np.random.default_rng(0),
            min_resource=1.0,
            max_resource=81.0,
            eta=3,
        )
    )
    dispatched = 0
    while dispatched < num_jobs:
        jobs = study.ask_batch(min(32, num_jobs - dispatched))
        if not jobs:
            break
        study.tell_batch(
            [(job, 1.0 + seeded_uniform(job.trial_id, float(job.rung))) for job in jobs]
        )
        dispatched += len(jobs)
    return dispatched


def bench_observability_overhead(quick: bool) -> dict[str, float]:
    """Enabled/disabled slowdown ratio per instrumented workload.

    Each workload constructs its instrumented objects *inside* the timed
    call (probes resolve at construction).  The two modes are timed in
    interleaved rounds — disabled then enabled, back to back, so a load
    swing on the machine hits both sides of a round roughly equally — and
    the reported ratio is the *median* of the per-round ratios, which a
    single noisy round cannot move.  The registry is always uninstalled on
    the way out: the rest of the suite must run unprobed.
    """
    import gc
    import statistics

    from repro.telemetry.runtime import install_runtime_registry, uninstall_runtime_registry

    scheduler_jobs = 20_000 if quick else 60_000
    mux_studies = 200 if quick else 400
    rounds = 7

    def mux_workload() -> None:
        with tempfile.TemporaryDirectory(prefix="perf_obs_") as directory:
            _run_studies_multiplexed(directory, mux_studies)

    workloads = {
        "study_scheduler": lambda: _study_scheduler_workload(scheduler_jobs),
        "multiplex": mux_workload,
    }
    ratios: dict[str, float] = {}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for name, workload in workloads.items():
            workload()  # warm caches so neither mode pays first-run costs
            per_round: list[float] = []
            for _ in range(rounds):
                uninstall_runtime_registry()
                disabled = time_call(workload)[0]
                install_runtime_registry()
                try:
                    enabled = time_call(workload)[0]
                finally:
                    uninstall_runtime_registry()
                per_round.append(enabled / disabled)
            ratios[name] = statistics.median(per_round)
    finally:
        if gc_was_enabled:
            gc.enable()
    return ratios


# ------------------------------------------------------------------- main


def run_suite(quick: bool, only: list[str] | None = None) -> dict:
    """Run every microbench (or the ``--only`` subset) and return the
    BENCH_perf.json document."""
    mode = "quick" if quick else "full"
    scheduler_jobs = 20_000 if quick else 100_000
    sim_workers = 50 if quick else 100
    sim_horizon = 1.0 if quick else 2.0
    e2e_workers = 50 if quick else 200
    e2e_horizon = 1.0 if quick else 2.0
    e2e_seeds = range(2 if quick else 3)
    mux_studies = 1_000 if quick else 10_000
    # The ISSUE's acceptance pins the speedup baseline at 1k studies.
    mux_speedup_studies = 1_000

    def want(name: str) -> bool:
        return only is None or any(token in name for token in only)

    print(f"[perf] calibrating ({mode} mode)...", flush=True)
    calibration = calibrate(iterations=500_000 if quick else 2_000_000)

    benchmarks: dict[str, dict] = {}

    if want("scheduler_asha_ops"):
        print("[perf] scheduler_asha_ops...", flush=True)
        seconds, dispatched = bench_scheduler_ops(scheduler_jobs)
        benchmarks["scheduler_asha_ops"] = benchmark_entry(
            dispatched / seconds,
            "jobs/s",
            higher_is_better=True,
            calibration_ops_per_s=calibration,
            meta={"jobs": dispatched},
        )

    if want("scheduler_asha_ops_batched"):
        print("[perf] scheduler_asha_ops_batched...", flush=True)
        seconds, dispatched = bench_scheduler_ops_batched(scheduler_jobs)
        benchmarks["scheduler_asha_ops_batched"] = benchmark_entry(
            dispatched / seconds,
            "jobs/s",
            higher_is_better=True,
            calibration_ops_per_s=calibration,
            meta={"jobs": dispatched, "batch": 32},
        )

    if want("simulator_events"):
        print("[perf] simulator_events...", flush=True)
        seconds, measurements = bench_simulator(sim_workers, sim_horizon, churn=False)
        benchmarks["simulator_events"] = benchmark_entry(
            measurements / seconds,
            "measurements/s",
            higher_is_better=True,
            calibration_ops_per_s=calibration,
            meta={"workers": sim_workers, "measurements": measurements},
        )

    if want("simulator_churn_events"):
        print("[perf] simulator_churn_events...", flush=True)
        seconds, measurements = bench_simulator(sim_workers, sim_horizon, churn=True)
        benchmarks["simulator_churn_events"] = benchmark_entry(
            measurements / seconds,
            "measurements/s",
            higher_is_better=True,
            calibration_ops_per_s=calibration,
            meta={"workers": sim_workers, "measurements": measurements},
        )

    if want("simulator_events_calendar"):
        print("[perf] simulator_events_calendar...", flush=True)
        queue_ops = 50_000 if quick else 200_000
        queue_pending = 1024 if quick else 4096
        seconds, ops = bench_event_queue(queue_ops, queue_pending)
        benchmarks["simulator_events_calendar"] = benchmark_entry(
            ops / seconds,
            "ops/s",
            higher_is_better=True,
            calibration_ops_per_s=calibration,
            meta={"pending": queue_pending, "ops": ops},
        )

    if want("end_to_end_asha"):
        print("[perf] end_to_end_asha (sequential)...", flush=True)
        seconds, _ = time_call(lambda: _end_to_end(e2e_workers, e2e_horizon, e2e_seeds, 1))
        benchmarks["end_to_end_asha"] = benchmark_entry(
            seconds,
            "s",
            higher_is_better=False,
            calibration_ops_per_s=calibration,
            meta={"workers": e2e_workers, "seeds": len(e2e_seeds)},
        )

    if want("parallel_speedup"):
        benchmarks.update(bench_parallel_speedups(e2e_workers, e2e_horizon))

    if want("multiplex_studies"):
        print(f"[perf] multiplex_studies ({mux_studies} studies)...", flush=True)
        seconds, ops = bench_multiplex_studies(mux_studies)
        benchmarks["multiplex_studies"] = benchmark_entry(
            ops / seconds,
            "ops/s",
            higher_is_better=True,
            calibration_ops_per_s=calibration,
            meta={
                "studies": mux_studies,
                "workers": _MUX_WORKERS,
                "measurements_per_study": _MUX_MEASUREMENTS,
                "ask_tell_ops": ops,
            },
        )

    if want("observability_overhead"):
        print("[perf] observability_overhead (probes off vs on)...", flush=True)
        ratios = bench_observability_overhead(quick)
        worst = max(ratios.values())
        benchmarks["observability_overhead"] = benchmark_entry(
            worst,
            "x",
            higher_is_better=False,
            # Already a same-machine ratio: normalise by 1.
            calibration_ops_per_s=1.0,
            meta={
                "ceiling": _OBS_OVERHEAD_CEILING,
                "gated": True,
                **{f"ratio_{name}": round(ratio, 4) for name, ratio in ratios.items()},
            },
        )

    if want("multiplex_speedup"):
        print(f"[perf] multiplex_speedup ({mux_speedup_studies} studies)...", flush=True)
        speedup = bench_multiplex_speedup(mux_speedup_studies)
        benchmarks["multiplex_speedup"] = benchmark_entry(
            speedup,
            "x",
            higher_is_better=True,
            # A machine-relative ratio, like the parallel speedups.
            calibration_ops_per_s=1.0,
            meta={
                "studies": mux_speedup_studies,
                "baseline": "loop-per-study",
                "baseline_fsync_every": _BASELINE_FSYNC_EVERY,
                "floor": 2.0,
                "gated": True,
            },
        )

    return {
        "schema_version": SCHEMA_VERSION,
        "mode": mode,
        "python": platform.python_version(),
        "calibration_ops_per_s": calibration,
        "benchmarks": benchmarks,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="reduced CI-smoke workloads")
    parser.add_argument("--output", default=DEFAULT_OUTPUT, help="report path")
    parser.add_argument(
        "--only",
        metavar="NAME[,NAME...]",
        help="run only benchmarks whose name contains one of these tokens "
        "(partial report; missing-vs-baseline rows are benign in the gate)",
    )
    args = parser.parse_args(argv)

    only = [token.strip() for token in args.only.split(",")] if args.only else None
    report = run_suite(args.quick, only=only)
    output = os.path.abspath(args.output)
    with open(output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[perf] wrote {output}")
    for name, entry in report["benchmarks"].items():
        if entry["value"] is None:
            print(f"  {name:24s} {'skipped':>12s} ({entry['meta']['skip_reason']})")
        else:
            print(f"  {name:24s} {entry['value']:>12.2f} {entry['unit']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
