"""The perf-regression microbenchmark suite.

Times the three layers the paper's large-scale regime leans on — raw
scheduler decisions, the discrete-event simulator, and multi-trial
experiment runs — and writes a stable-schema ``BENCH_perf.json``:

* ``scheduler_asha_ops`` — ASHA ``next_job``/``report``/``is_done`` cycles
  per second, driven directly with synthetic losses (no simulator).  This
  is where the promotion-scan caching shows up.
* ``scheduler_asha_ops_batched`` — the same workload through the batched
  surface (``next_job_batch``/``report_batch``, batch 32): what a backend
  filling many free workers per ask actually pays.  The gap between this
  and ``scheduler_asha_ops`` is the per-call overhead batching amortises.
* ``simulator_events`` / ``simulator_churn_events`` — simulated job
  completions per second on the PTB LSTM surrogate at 100 workers, without
  and with worker churn.  This is where the event queue, churn victim
  selection, and config-seed caching show up.
* ``simulator_events_calendar`` — the calendar-queue ``EventQueue`` alone
  under a hold-model churn (pop one event, push its successor) at a deep
  pending set, isolating the simulator core from scheduler and surrogate
  costs.
* ``end_to_end_asha`` — a multi-seed ASHA experiment at (reduced)
  Figure-5 scale through :func:`repro.experiments.runner.run_trials`,
  sequential.
* ``parallel_speedup`` / ``parallel_speedup_4`` / ``parallel_speedup_8`` —
  an 8-seed run of the same experiment with ``n_jobs`` 2/4/8, reported as
  speedup over its own sequential timing.  ``parallel_speedup`` carries a
  hard CI floor (``meta.floor``, gated); the 4/8-job entries are recorded
  for the docs table.  On machines with fewer than 4 cores the speedups are
  *skipped with a reason* (``meta.skipped``) rather than mis-gated —
  ``meta.cpu_count`` always records what the machine had.

Usage::

    PYTHONPATH=src python benchmarks/perf/run_perf.py [--quick] \
        [--output BENCH_perf.json]

``--quick`` shrinks every workload for CI smoke runs; the schema (and the
normalisation that makes scores comparable across machines) is identical in
both modes.  Compare two reports with ``check_regression.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time

import numpy as np

from repro.backend.events import EventQueue
from repro.backend.simulation import SimulatedCluster
from repro.core import ASHA
from repro.experiments.runner import run_trials
from repro.objectives import ptb_lstm
from repro.objectives.surrogate import seeded_uniform

from perf_utils import SCHEMA_VERSION, benchmark_entry, calibrate, skipped_entry, time_call

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "..", "BENCH_perf.json"
)


# ----------------------------------------------------------- microbenches


def bench_scheduler_ops(num_jobs: int) -> tuple[float, int]:
    """(seconds, jobs dispatched) driving ASHA directly with synthetic losses."""
    objective = ptb_lstm.make_objective(seed_salt=0)
    rng = np.random.default_rng(0)
    r_max = ptb_lstm.R
    scheduler = ASHA(
        objective.space, rng, min_resource=r_max / 64.0, max_resource=r_max, eta=4
    )
    start = time.perf_counter()
    dispatched = 0
    for _ in range(num_jobs):
        if scheduler.is_done():
            break
        job = scheduler.next_job()
        if job is None:
            break
        # Synthetic loss keyed by trial id and rung: deterministic, free.
        scheduler.report(job, 1.0 + seeded_uniform(job.trial_id, float(job.rung)))
        dispatched += 1
    return time.perf_counter() - start, dispatched


def bench_scheduler_ops_batched(num_jobs: int, batch: int = 32) -> tuple[float, int]:
    """(seconds, jobs dispatched) driving ASHA through the batched surface.

    Same seeded workload as :func:`bench_scheduler_ops` — the batched API
    contract guarantees an identical job stream — but asked and reported
    ``batch`` jobs at a time, the way a backend filling free workers does.
    """
    objective = ptb_lstm.make_objective(seed_salt=0)
    rng = np.random.default_rng(0)
    r_max = ptb_lstm.R
    scheduler = ASHA(
        objective.space, rng, min_resource=r_max / 64.0, max_resource=r_max, eta=4
    )
    start = time.perf_counter()
    dispatched = 0
    while dispatched < num_jobs:
        if scheduler.is_done():
            break
        jobs = scheduler.next_job_batch(min(batch, num_jobs - dispatched))
        if not jobs:
            break
        scheduler.report_batch(
            [(job, 1.0 + seeded_uniform(job.trial_id, float(job.rung))) for job in jobs]
        )
        dispatched += len(jobs)
    return time.perf_counter() - start, dispatched


def bench_event_queue(num_ops: int, pending: int) -> tuple[float, int]:
    """(seconds, operations) of hold-model churn on the calendar EventQueue.

    Seeds ``pending`` events, then repeatedly pops the earliest and pushes
    its successor at ``popped.time + delta`` — the classic *hold* workload
    every event-driven simulator core reduces to.  Deltas are precomputed so
    the timed region is queue operations only; each hold counts as two
    operations (one pop, one push).
    """
    rng = np.random.default_rng(3)
    deltas = [float(d) for d in rng.exponential(1.0, size=8192)]
    queue = EventQueue()
    for t in rng.uniform(0.0, 50.0, size=pending):
        queue.push(float(t), "seed")
    n_deltas = len(deltas)
    start = time.perf_counter()
    for i in range(num_ops):
        event = queue.pop()
        queue.push(event.time + deltas[i % n_deltas], "hold")
    return time.perf_counter() - start, num_ops * 2


def _simulate(num_workers: int, horizon: float, churn: bool) -> int:
    objective = ptb_lstm.make_objective(seed_salt=0)
    rng = np.random.default_rng(0)
    r_max = ptb_lstm.R
    scheduler = ASHA(
        objective.space, rng, min_resource=r_max / 64.0, max_resource=r_max, eta=4
    )
    kwargs = dict(straggler_std=0.2, drop_probability=0.002)
    if churn:
        kwargs.update(churn_rate=2.0 / r_max, churn_downtime=r_max / 20.0)
    cluster = SimulatedCluster(num_workers, seed=7, **kwargs)
    result = cluster.run(scheduler, objective, time_limit=horizon * r_max)
    return len(result.measurements)


def bench_simulator(num_workers: int, horizon: float, *, churn: bool) -> tuple[float, int]:
    """(seconds, completed measurements) of one simulated ASHA run."""
    seconds, measurements = time_call(lambda: _simulate(num_workers, horizon, churn))
    return seconds, measurements


def _end_to_end(num_workers: int, horizon: float, seeds: range, n_jobs: int) -> int:
    r_max = ptb_lstm.R

    def make_scheduler(objective, rng):
        return ASHA(
            objective.space, rng, min_resource=r_max / 64.0, max_resource=r_max, eta=4
        )

    records = run_trials(
        "ASHA",
        make_scheduler,
        lambda seed: ptb_lstm.make_objective(seed_salt=seed),
        num_workers=num_workers,
        time_limit=horizon * r_max,
        seeds=seeds,
        n_jobs=n_jobs,
    )
    return sum(len(r.backend.measurements) for r in records)


#: Seeds for the speedup suite — divisible by every measured n_jobs so the
#: chunked dispatcher hands each worker equally-sized spans.
SPEEDUP_SEEDS = range(8)

#: (benchmark name, n_jobs, cores required, hard floor enforced by CI).
#: Only the 2-job floor is gated — the 4/8-job entries feed the docs table
#: and record their target floors informationally (ISSUE acceptance: the CI
#: gate enforces the n_jobs=2 floor).
SPEEDUP_BENCHES = [
    ("parallel_speedup", 2, 4, 1.3, True),
    ("parallel_speedup_4", 4, 4, None, False),
    ("parallel_speedup_8", 8, 8, 2.5, False),
]


def bench_parallel_speedups(num_workers: int, horizon: float) -> dict[str, dict]:
    """The ``n_jobs ∈ {2, 4, 8}`` speedup entries, skipping what this machine
    cannot measure.

    One 8-seed sequential run is timed as the reference, then each parallel
    configuration against it.  Runners with fewer than 4 cores cannot
    measure any speedup honestly (fork overhead dominates and the gate would
    mis-fire), so every entry below the core requirement is recorded as
    skipped with the machine's ``cpu_count`` — never silently mis-gated.
    """
    cpu_count = os.cpu_count() or 1
    entries: dict[str, dict] = {}
    measurable = [b for b in SPEEDUP_BENCHES if cpu_count >= b[2]]
    sequential_seconds = None
    if measurable:
        print(f"[perf] parallel speedup reference ({len(SPEEDUP_SEEDS)} seeds, sequential)...",
              flush=True)
        sequential_seconds, _ = time_call(
            lambda: _end_to_end(num_workers, horizon, SPEEDUP_SEEDS, 1)
        )
    for name, n_jobs, min_cores, floor, gated in SPEEDUP_BENCHES:
        meta: dict = {"n_jobs": n_jobs, "cpu_count": cpu_count, "gated": gated}
        if floor is not None:
            meta["floor"] = floor
        if cpu_count < min_cores:
            entries[name] = skipped_entry(
                "x",
                higher_is_better=True,
                reason=f"requires >= {min_cores} cores, machine has {cpu_count}",
                meta=meta,
            )
            print(f"[perf] {name} skipped ({cpu_count} cores < {min_cores})", flush=True)
            continue
        print(f"[perf] {name} (n_jobs={n_jobs})...", flush=True)
        seconds, _ = time_call(lambda: _end_to_end(num_workers, horizon, SPEEDUP_SEEDS, n_jobs))
        entries[name] = benchmark_entry(
            sequential_seconds / seconds,
            "x",
            higher_is_better=True,
            # Speedup is already a machine-relative ratio: normalise by 1.
            calibration_ops_per_s=1.0,
            meta=meta,
        )
    return entries


# ------------------------------------------------------------------- main


def run_suite(quick: bool) -> dict:
    """Run every microbench and return the BENCH_perf.json document."""
    mode = "quick" if quick else "full"
    scheduler_jobs = 20_000 if quick else 100_000
    sim_workers = 50 if quick else 100
    sim_horizon = 1.0 if quick else 2.0
    e2e_workers = 50 if quick else 200
    e2e_horizon = 1.0 if quick else 2.0
    e2e_seeds = range(2 if quick else 3)

    print(f"[perf] calibrating ({mode} mode)...", flush=True)
    calibration = calibrate(iterations=500_000 if quick else 2_000_000)

    benchmarks: dict[str, dict] = {}

    print("[perf] scheduler_asha_ops...", flush=True)
    seconds, dispatched = bench_scheduler_ops(scheduler_jobs)
    benchmarks["scheduler_asha_ops"] = benchmark_entry(
        dispatched / seconds,
        "jobs/s",
        higher_is_better=True,
        calibration_ops_per_s=calibration,
        meta={"jobs": dispatched},
    )

    print("[perf] scheduler_asha_ops_batched...", flush=True)
    seconds, dispatched = bench_scheduler_ops_batched(scheduler_jobs)
    benchmarks["scheduler_asha_ops_batched"] = benchmark_entry(
        dispatched / seconds,
        "jobs/s",
        higher_is_better=True,
        calibration_ops_per_s=calibration,
        meta={"jobs": dispatched, "batch": 32},
    )

    print("[perf] simulator_events...", flush=True)
    seconds, measurements = bench_simulator(sim_workers, sim_horizon, churn=False)
    benchmarks["simulator_events"] = benchmark_entry(
        measurements / seconds,
        "measurements/s",
        higher_is_better=True,
        calibration_ops_per_s=calibration,
        meta={"workers": sim_workers, "measurements": measurements},
    )

    print("[perf] simulator_churn_events...", flush=True)
    seconds, measurements = bench_simulator(sim_workers, sim_horizon, churn=True)
    benchmarks["simulator_churn_events"] = benchmark_entry(
        measurements / seconds,
        "measurements/s",
        higher_is_better=True,
        calibration_ops_per_s=calibration,
        meta={"workers": sim_workers, "measurements": measurements},
    )

    print("[perf] simulator_events_calendar...", flush=True)
    queue_ops = 50_000 if quick else 200_000
    queue_pending = 1024 if quick else 4096
    seconds, ops = bench_event_queue(queue_ops, queue_pending)
    benchmarks["simulator_events_calendar"] = benchmark_entry(
        ops / seconds,
        "ops/s",
        higher_is_better=True,
        calibration_ops_per_s=calibration,
        meta={"pending": queue_pending, "ops": ops},
    )

    print("[perf] end_to_end_asha (sequential)...", flush=True)
    seconds, _ = time_call(lambda: _end_to_end(e2e_workers, e2e_horizon, e2e_seeds, 1))
    benchmarks["end_to_end_asha"] = benchmark_entry(
        seconds,
        "s",
        higher_is_better=False,
        calibration_ops_per_s=calibration,
        meta={"workers": e2e_workers, "seeds": len(e2e_seeds)},
    )

    benchmarks.update(bench_parallel_speedups(e2e_workers, e2e_horizon))

    return {
        "schema_version": SCHEMA_VERSION,
        "mode": mode,
        "python": platform.python_version(),
        "calibration_ops_per_s": calibration,
        "benchmarks": benchmarks,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="reduced CI-smoke workloads")
    parser.add_argument("--output", default=DEFAULT_OUTPUT, help="report path")
    args = parser.parse_args(argv)

    report = run_suite(args.quick)
    output = os.path.abspath(args.output)
    with open(output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[perf] wrote {output}")
    for name, entry in report["benchmarks"].items():
        if entry["value"] is None:
            print(f"  {name:24s} {'skipped':>12s} ({entry['meta']['skip_reason']})")
        else:
            print(f"  {name:24s} {entry['value']:>12.2f} {entry['unit']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
