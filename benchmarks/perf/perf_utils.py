"""Timing, calibration, and schema helpers for the perf-regression harness.

The harness's job is to notice when the scheduler or simulator hot paths get
slower, across machines of very different speeds.  Every measured value is
therefore *normalised* by a calibration score — a fixed pure-Python workload
timed on the same machine in the same process — before it is compared
against the committed baseline.  Normalised throughputs are dimensionless
("how many simulator events per calibration op") and roughly portable
between a laptop and a CI runner, which raw ops/sec are not.
"""

from __future__ import annotations

import time
from typing import Any, Callable

__all__ = [
    "SCHEMA_VERSION",
    "benchmark_entry",
    "calibrate",
    "skipped_entry",
    "time_call",
]

#: Bump when the BENCH_perf.json layout changes incompatibly.
#: v2: benchmarks may be *skipped* (``value``/``normalized`` null with
#: ``meta.skipped``/``meta.skip_reason``), and gated benchmarks may carry a
#: hard ``meta.floor`` on the raw value in addition to the baseline-ratio
#: check.
SCHEMA_VERSION = 2


def time_call(fn: Callable[[], Any], *, repeats: int = 1) -> tuple[float, Any]:
    """(best wall-clock seconds, last result) of ``fn`` over ``repeats`` runs.

    Best-of-k damps scheduler jitter; the result is returned so callers can
    derive the work count (events, jobs) from the same run they timed.
    """
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


def calibrate(*, iterations: int = 2_000_000, repeats: int = 3) -> float:
    """Calibration ops/sec: a fixed pure-Python workload on this machine.

    The loop mixes integer arithmetic, a dict store, and a method call —
    the same instruction mix the simulator hot path spends its time on —
    so its throughput tracks how fast this interpreter runs our kind of
    code.
    """

    def workload() -> int:
        acc = 0
        store: dict[int, int] = {}
        for i in range(iterations):
            acc = (acc + i * 31) & 0xFFFFFFFF
            if i & 1023 == 0:
                store[i] = acc
        return acc + len(store)

    seconds, _ = time_call(workload, repeats=repeats)
    return iterations / seconds


def benchmark_entry(
    value: float,
    unit: str,
    *,
    higher_is_better: bool,
    calibration_ops_per_s: float,
    meta: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """One BENCH_perf.json benchmark record, with its normalised score.

    ``normalized`` is always *higher-is-better*: throughputs divide by the
    calibration score, durations invert first.  The regression gate compares
    only this field.
    """
    if value <= 0:
        raise ValueError(f"benchmark value must be positive, got {value}")
    if higher_is_better:
        normalized = value / calibration_ops_per_s
    else:
        normalized = (1.0 / value) * calibration_ops_per_s
    return {
        "value": round(value, 4),
        "unit": unit,
        "higher_is_better": higher_is_better,
        "normalized": normalized,
        "meta": meta or {},
    }


def skipped_entry(
    unit: str,
    *,
    higher_is_better: bool,
    reason: str,
    meta: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """A benchmark record for a measurement this machine cannot take.

    A 1-core runner cannot measure parallel speedup; recording ``null`` with
    an explicit reason keeps the schema stable while making the gap loud —
    the regression gate reports skips instead of silently mis-gating a
    meaningless number (see ISSUE: ``meta.skipped`` / ``meta.skip_reason``).
    """
    return {
        "value": None,
        "unit": unit,
        "higher_is_better": higher_is_better,
        "normalized": None,
        "meta": {**(meta or {}), "skipped": True, "skip_reason": reason},
    }
