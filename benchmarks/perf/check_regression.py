"""Gate: compare a BENCH_perf.json report against the committed baseline.

Usage::

    python benchmarks/perf/check_regression.py \
        --baseline benchmarks/perf/baseline.json \
        --current BENCH_perf.json [--threshold 2.0]

Compares the *normalized* (calibration-scaled, higher-is-better) score of
every gated benchmark.  A benchmark regresses when its normalized score
falls below ``baseline / threshold``; the default threshold of 2.0 tolerates
machine noise and CI-runner variance while catching genuine slowdowns.
Benchmarks whose ``meta.gated`` is ``false`` (the parallel-speedup ratio,
which measures core count) are reported but never fail the gate, as are
benchmarks present on only one side.
"""

from __future__ import annotations

import argparse
import json
import sys


def load(path: str) -> dict:
    with open(path) as fh:
        report = json.load(fh)
    if "benchmarks" not in report:
        raise SystemExit(f"{path}: not a BENCH_perf.json report (no 'benchmarks' key)")
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="fail when normalized score is worse than baseline by this factor",
    )
    args = parser.parse_args(argv)

    baseline = load(args.baseline)
    current = load(args.current)
    failures: list[str] = []
    print(f"{'benchmark':26s} {'baseline':>12s} {'current':>12s} {'ratio':>8s}")
    for name, base_entry in sorted(baseline["benchmarks"].items()):
        cur_entry = current["benchmarks"].get(name)
        if cur_entry is None:
            print(f"{name:26s} {'(missing in current — skipped)':>34s}")
            continue
        base_score = base_entry["normalized"]
        cur_score = cur_entry["normalized"]
        ratio = cur_score / base_score if base_score else float("inf")
        gated = base_entry.get("meta", {}).get("gated", True)
        flag = ""
        if ratio < 1.0 / args.threshold:
            if gated:
                flag = "  << REGRESSION"
                failures.append(
                    f"{name}: normalized {cur_score:.4f} vs baseline "
                    f"{base_score:.4f} ({ratio:.2f}x, threshold {1 / args.threshold:.2f}x)"
                )
            else:
                flag = "  (ungated)"
        print(f"{name:26s} {base_score:12.4f} {cur_score:12.4f} {ratio:8.2f}{flag}")
    if failures:
        print("\nperf regression detected:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nno perf regressions.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
