"""Gate: compare a BENCH_perf.json report against the committed baseline.

Usage::

    python benchmarks/perf/check_regression.py \
        --baseline benchmarks/perf/baseline.json \
        --current BENCH_perf.json [--threshold 2.0] \
        [--markdown trend.md] [--no-gate]

Two independent checks run over every gated benchmark:

* **ratio** — the *normalized* (calibration-scaled, higher-is-better) score
  must not fall below ``baseline / threshold``; the default threshold of 2.0
  tolerates machine noise and CI-runner variance while catching genuine
  slowdowns.
* **floor** — benchmarks carrying ``meta.floor`` (the parallel-speedup
  suite) must keep their *raw* value at or above it, regardless of what the
  baseline recorded.  A floor failure names the benchmark, its value, and
  the floor it missed.
* **ceiling** — the dual of the floor, for benchmarks whose raw value is a
  cost that must stay *small* (``observability_overhead``: the enabled-probe
  slowdown ratio).  ``meta.ceiling`` fails the gate when the raw value rises
  above it, again independent of the baseline.

Benchmarks whose ``meta.gated`` is ``false`` are reported but never fail the
gate, as are benchmarks present only in the *baseline* (retired benches)
and benchmarks *skipped* on either side (``value: null`` with
``meta.skip_reason`` — e.g. parallel speedups on a runner with too few
cores; the skip reason is printed so the gap is loud, per the schema-v2
contract).

A gated benchmark present in the *current* report but absent from the
baseline is a clear gate error, not a silent "only in current" row: the
baseline is stale (a new benchmark landed without regenerating it), and
until it is regenerated the gate cannot vouch for that benchmark's ratio —
and would silently skip its ``meta.floor``.  The failure message says
exactly how to fix it.  Malformed entries (missing the schema's required
keys) are likewise reported as named gate errors instead of crashing with
a ``KeyError`` traceback.

``--markdown FILE`` appends the comparison as a GitHub-flavoured delta table
(for ``$GITHUB_STEP_SUMMARY``); ``--no-gate`` prints everything but always
exits 0 — the CI trend step uses both so the report lands in the job summary
even when the separate gate step fails the build.
"""

from __future__ import annotations

import argparse
import json
import sys


def load(path: str) -> dict:
    with open(path) as fh:
        report = json.load(fh)
    if "benchmarks" not in report:
        raise SystemExit(f"{path}: not a BENCH_perf.json report (no 'benchmarks' key)")
    return report


def _is_skipped(entry: dict | None) -> bool:
    return entry is not None and (
        entry.get("value") is None or entry.get("meta", {}).get("skipped", False)
    )


def compare(baseline: dict, current: dict, threshold: float) -> tuple[list[dict], list[str]]:
    """Per-benchmark comparison rows plus the list of gate failures.

    Rows carry everything both renderers (console table, markdown table)
    need: scores, ratio, and a human-readable status.
    """
    rows: list[dict] = []
    failures: list[str] = []
    names = sorted(set(baseline["benchmarks"]) | set(current["benchmarks"]))
    for name in names:
        base_entry = baseline["benchmarks"].get(name)
        cur_entry = current["benchmarks"].get(name)
        row = {"name": name, "base": None, "cur": None, "ratio": None, "status": "ok"}
        rows.append(row)
        try:
            _compare_one(name, base_entry, cur_entry, threshold, row, failures)
        except KeyError as exc:
            # A malformed entry (missing "value"/"normalized"/"unit") must
            # name itself in the gate output, not die as a traceback.
            row["status"] = "MALFORMED"
            failures.append(
                f"{name}: report entry is missing required key {exc} — "
                "regenerate the file with benchmarks/perf/run_perf.py"
            )
    return rows, failures


def _compare_one(
    name: str,
    base_entry: dict | None,
    cur_entry: dict | None,
    threshold: float,
    row: dict,
    failures: list[str],
) -> None:
    """Fill one comparison row; append any gate failure for this benchmark."""
    if cur_entry is None:
        # A benchmark only the baseline knows was retired (or renamed):
        # nothing to measure against, never a failure.
        row["status"] = "only in baseline"
        return
    if base_entry is None:
        # The current report measures a benchmark the baseline has never
        # seen: the committed baseline is stale.  For a gated benchmark
        # that is a hard error — the ratio check cannot run, and skipping
        # silently would also skip any meta.floor the new benchmark
        # carries.
        meta = cur_entry.get("meta", {})
        if _is_skipped(cur_entry):
            reason = meta.get("skip_reason", "no reason recorded")
            row["status"] = f"only in current (skipped: {reason})"
            return
        row["cur"] = cur_entry["normalized"]
        floor = meta.get("floor")
        ceiling = meta.get("ceiling")
        if floor is not None and cur_entry["value"] < floor and meta.get("gated", True):
            row["status"] = "BELOW FLOOR"
            failures.append(
                f"{name}: value {cur_entry['value']:.4f}{cur_entry['unit']} is below "
                f"its hard floor of {floor}{cur_entry['unit']} (benchmark is also "
                "missing from the baseline)"
            )
        elif ceiling is not None and cur_entry["value"] > ceiling and meta.get("gated", True):
            row["status"] = "ABOVE CEILING"
            failures.append(
                f"{name}: value {cur_entry['value']:.4f}{cur_entry['unit']} is above "
                f"its hard ceiling of {ceiling}{cur_entry['unit']} (benchmark is also "
                "missing from the baseline)"
            )
        elif meta.get("gated", True):
            row["status"] = "MISSING FROM BASELINE"
            failures.append(
                f"{name}: present in the current report but missing from the "
                "baseline — the committed baseline is stale.  Regenerate it "
                "(python benchmarks/perf/run_perf.py --quick --output "
                "benchmarks/perf/baseline.json) and commit the result so the "
                "gate can track this benchmark."
            )
        else:
            row["status"] = "only in current (ungated)"
        return
    meta = {**base_entry.get("meta", {}), **cur_entry.get("meta", {})}
    gated = meta.get("gated", True)
    if _is_skipped(cur_entry):
        # ``meta`` is optional on skipped entries (hand-pruned baselines
        # and older recorders omit it); indexing it directly raised
        # KeyError before the comparison could report the skip.
        reason = cur_entry.get("meta", {}).get("skip_reason", "no reason recorded")
        row["status"] = f"skipped on current: {reason}"
        row["base"] = None if _is_skipped(base_entry) else base_entry["normalized"]
        return
    row["cur"] = cur_entry["normalized"]
    # The hard floor binds whenever *this* run measured the benchmark —
    # a skipped baseline (recorded on a small machine) must not let a
    # below-floor measurement through.
    floor = meta.get("floor")
    if floor is not None and cur_entry["value"] < floor:
        if gated:
            row["status"] = "BELOW FLOOR"
            failures.append(
                f"{name}: value {cur_entry['value']:.4f}{cur_entry['unit']} is below "
                f"its hard floor of {floor}{cur_entry['unit']} "
                f"(n_jobs={meta.get('n_jobs', '?')}, cpu_count={meta.get('cpu_count', '?')})"
            )
        else:
            row["status"] = f"below informational floor {floor}"
    # The ceiling is the floor's dual: a raw value that must stay *small*
    # (an overhead ratio), gated independently of the baseline.
    ceiling = meta.get("ceiling")
    if ceiling is not None and cur_entry["value"] > ceiling:
        if gated:
            row["status"] = "ABOVE CEILING"
            failures.append(
                f"{name}: value {cur_entry['value']:.4f}{cur_entry['unit']} is above "
                f"its hard ceiling of {ceiling}{cur_entry['unit']}"
            )
        else:
            row["status"] = f"above informational ceiling {ceiling}"
    if _is_skipped(base_entry):
        reason = base_entry.get("meta", {}).get("skip_reason", "no reason recorded")
        if row["status"] == "ok":
            row["status"] = f"skipped on baseline: {reason}"
        return
    base_score = base_entry["normalized"]
    cur_score = cur_entry["normalized"]
    ratio = cur_score / base_score if base_score else float("inf")
    row.update(base=base_score, ratio=ratio)
    if ratio < 1.0 / threshold:
        if gated and row["status"] not in ("BELOW FLOOR", "ABOVE CEILING"):
            row["status"] = "REGRESSION"
            failures.append(
                f"{name}: normalized {cur_score:.4f} vs baseline "
                f"{base_score:.4f} ({ratio:.2f}x, threshold {1 / threshold:.2f}x)"
            )
        elif not gated:
            row["status"] = "ungated slowdown"


def _fmt(score: float | None) -> str:
    return f"{score:.4f}" if score is not None else "—"


def render_console(rows: list[dict]) -> None:
    print(f"{'benchmark':26s} {'baseline':>12s} {'current':>12s} {'ratio':>8s}")
    for row in rows:
        ratio = f"{row['ratio']:.2f}" if row["ratio"] is not None else "—"
        note = "" if row["status"] == "ok" else f"  [{row['status']}]"
        print(
            f"{row['name']:26s} {_fmt(row['base']):>12s} {_fmt(row['cur']):>12s} "
            f"{ratio:>8s}{note}"
        )


def render_markdown(rows: list[dict], threshold: float) -> str:
    """The perf-trend delta table for ``$GITHUB_STEP_SUMMARY``."""
    lines = [
        "## Perf trend vs committed baseline",
        "",
        f"Normalized scores (higher is better); gate threshold {threshold}x.",
        "",
        "| benchmark | baseline | current | delta | status |",
        "|---|---:|---:|---:|---|",
    ]
    for row in rows:
        status = row["status"]
        if status.startswith("skipped on"):
            # Small CI machines legitimately skip some benchmarks
            # (``meta.skipped`` / ``value: null``); say so instead of
            # rendering a row of null deltas that reads like missing data.
            side, _, reason = status.partition(": ")
            side = side.removeprefix("skipped on ")
            delta = f"skipped on {side}"
            status = f"⏭️ skipped: {reason or 'no reason recorded'}"
        elif row["ratio"] is not None:
            delta = f"{(row['ratio'] - 1.0) * 100:+.1f}%"
        else:
            delta = "—"
        if status in (
            "REGRESSION",
            "BELOW FLOOR",
            "ABOVE CEILING",
            "MISSING FROM BASELINE",
            "MALFORMED",
        ):
            status = f"❌ {status}"
        elif status == "ok":
            status = "✅"
        lines.append(
            f"| `{row['name']}` | {_fmt(row['base'])} | {_fmt(row['cur'])} "
            f"| {delta} | {status} |"
        )
    lines.append("")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="fail when normalized score is worse than baseline by this factor",
    )
    parser.add_argument(
        "--markdown",
        metavar="FILE",
        help="append a GitHub-flavoured delta table to FILE (use $GITHUB_STEP_SUMMARY)",
    )
    parser.add_argument(
        "--no-gate",
        action="store_true",
        help="report (console and --markdown) but always exit 0",
    )
    args = parser.parse_args(argv)

    baseline = load(args.baseline)
    current = load(args.current)
    rows, failures = compare(baseline, current, args.threshold)
    render_console(rows)
    if args.markdown:
        with open(args.markdown, "a") as fh:
            fh.write(render_markdown(rows, args.threshold))
        print(f"\nmarkdown trend appended to {args.markdown}")
    if failures:
        print("\nperf gate failed:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        if args.no_gate:
            print("(--no-gate: reporting only, exiting 0)", file=sys.stderr)
            return 0
        return 1
    print("\nno perf regressions.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
