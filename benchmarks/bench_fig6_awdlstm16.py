"""Figure 6: ASHA vs PBT on the modern AWD-LSTM benchmark (16 workers).

Section 4.3.1 settings: ASHA with ``eta = 4, r = 1, R = 256`` epochs; PBT
with population 20, exploit/explore every 8 epochs.  Expected shape: PBT is
competitive early (its whole population trains immediately at increasing
fidelity) but ASHA finds a better final configuration, with a visible gap at
the end of the run.
"""

from __future__ import annotations

from _bench_utils import bench_jobs, chart, curves_to_series, emit

from repro.analysis import render_series, render_table
from repro.experiments.figures import figure6

TRIALS = 5


def test_fig6_awdlstm16(benchmark):
    curves = benchmark.pedantic(
        figure6, kwargs=dict(num_trials=TRIALS, n_jobs=bench_jobs()), rounds=1, iterations=1
    )
    grid, series = curves_to_series(curves)
    emit(
        "fig6_awdlstm16",
        render_series(
            grid,
            series,
            time_label="sim time",
            title=f"Figure 6: AWD-LSTM on PTB, 16 workers ({TRIALS} trials)",
        )
        + "\n"
        + render_table(
            ["method", "final mean validation ppl"],
            [[name, round(c.final_mean, 2)] for name, c in curves.items()],
        )
        + "\n\n"
        + chart(curves, y_label="validation perplexity"),
    )
    asha, pbt = curves["ASHA"], curves["PBT"]
    # ASHA ends better (paper: min/max ranges do not overlap at the end).
    assert asha.final_mean < pbt.final_mean
    # Final perplexities land in Figure 6's y-range.
    assert 59.0 < asha.final_mean < 64.0
