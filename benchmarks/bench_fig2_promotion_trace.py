"""Figure 2: chronological job traces of synchronous SHA vs ASHA.

Replays Bracket 0 of the toy example (``n = 9, r = 1, R = 9, eta = 3``) on
one worker with the figure's scripted losses and prints both schedulers'
job sequences.  The reproduced promotion sets match the figure exactly
(configurations 1, 6, 8 to rung 1; configuration 8 to rung 2); ASHA's trace
interleaves promotions with base-rung growth instead of waiting for rung
barriers.
"""

from __future__ import annotations

from _bench_utils import emit

from repro.analysis import render_table
from repro.experiments.figures import figure2_traces


def test_fig2_promotion_trace(benchmark):
    traces = benchmark.pedantic(figure2_traces, rounds=1, iterations=1)
    sha, asha = traces["SHA"], traces["ASHA"]
    # SHA: strict rung barriers.
    assert [r for _, r in sha] == [0] * 9 + [1] * 3 + [2]
    # ASHA: a promotion fires before the base rung is full.
    asha_rungs = [r for _, r in asha]
    assert asha_rungs.index(1) < len(asha_rungs) - 1 - asha_rungs[::-1].index(0)
    # Both promote the same configurations (the figure's colouring).
    for trace in (sha, asha):
        assert {c for c, r in trace if r == 1} == {1, 6, 8}
        assert [c for c, r in trace if r == 2] == [8]

    rows = []
    for i in range(max(len(sha), len(asha))):
        rows.append(
            [
                i + 1,
                f"cfg {sha[i][0]} @ rung {sha[i][1]}" if i < len(sha) else "",
                f"cfg {asha[i][0]} @ rung {asha[i][1]}" if i < len(asha) else "",
            ]
        )
    emit(
        "fig2_promotion_trace",
        render_table(
            ["job #", "SHA (synchronous)", "ASHA (asynchronous)"],
            rows,
            title="Figure 2: chronological jobs, bracket 0 (r=1, R=9, eta=3)",
        ),
    )
