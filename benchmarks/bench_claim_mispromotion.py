"""Section 3.3: ASHA's incorrect promotions grow like sqrt(n).

Monte-Carlo over the exact arrival process: i.i.d. configuration qualities
arrive one at a time, ASHA promotes whenever the top 1/eta rule allows, and
a mispromotion is a promoted configuration outside the final top ``n/eta``.
The mean count divided by sqrt(n) should stay bounded as n grows (the
Dvoretzky-Kiefer-Wolfowitz-flavoured argument in the paper).
"""

from __future__ import annotations

from _bench_utils import emit

from repro.analysis import render_table
from repro.experiments.figures import claim_mispromotion


def test_claim_mispromotion_sqrt_scaling(benchmark):
    studies = benchmark.pedantic(
        claim_mispromotion,
        kwargs=dict(ns=(64, 256, 1024, 4096), eta=4, repeats=20),
        rounds=1,
        iterations=1,
    )
    emit(
        "claim_mispromotion",
        render_table(
            ["n", "mean mispromotions", "std", "sqrt(n)", "mean / sqrt(n)"],
            [
                [s.n, round(s.mean, 2), round(s.std, 2), round(s.sqrt_n, 1), round(s.ratio, 3)]
                for s in studies
            ],
            title="Section 3.3: rung-0 mispromotions vs sqrt(n), eta=4",
        ),
    )
    ratios = [s.ratio for s in studies]
    assert all(0.02 < r < 3.0 for r in ratios)
    # No systematic growth: the largest-n ratio is within 2.5x of the smallest-n.
    assert ratios[-1] < ratios[0] * 2.5
    # The raw counts DO grow (so the test is not vacuous).
    assert studies[-1].mean > studies[0].mean
