"""Figure 9 (Appendix A.2): Hyperband vs Fabolas vs Random, four benchmarks.

Sequential comparison on: the two real synthetic-data SVM tasks ('vehicle'
and 'mnist' stand-ins, resource = training datapoints) and the two CNN
surrogates (CIFAR-10 cuda-convnet and SVHN small-CNN, resource = SGD
iterations).  ``Hyperband (by rung)`` and ``Hyperband (by bracket)`` are the
same runs under the two incumbent accounting schemes.  Expected shape:

* Hyperband (by rung) is competitive with Fabolas and usually ends at least
  as good, with lower variance;
* Hyperband (by bracket) lags by-rung accounting early (it only reports at
  bracket boundaries);
* both beat random search.
"""

from __future__ import annotations

import pytest
from _bench_utils import bench_jobs, chart, curves_to_series, emit

from repro.analysis import render_series, render_table
from repro.experiments.figures import FIGURE9_BENCHMARKS, figure9

TRIALS = 3


@pytest.mark.parametrize("benchmark_name", FIGURE9_BENCHMARKS)
def test_fig9_fabolas(benchmark, benchmark_name):
    curves = benchmark.pedantic(
        figure9,
        args=(benchmark_name,),
        kwargs=dict(num_trials=TRIALS, n_jobs=bench_jobs()),
        rounds=1,
        iterations=1,
    )
    grid, series = curves_to_series(curves)
    emit(
        f"fig9_fabolas_{benchmark_name}",
        render_series(
            grid,
            series,
            time_label="sim time",
            title=f"Figure 9 ({benchmark_name}): test error vs time ({TRIALS} trials)",
        )
        + "\n"
        + render_table(
            ["method", "final mean error"],
            [[name, round(c.final_mean, 4)] for name, c in curves.items()],
        )
        + "\n\n"
        + chart(curves, y_label="test error"),
    )
    final = {name: c.final_mean for name, c in curves.items()}
    # Hyperband (by rung) ends at least as well as random search.
    assert final["Hyperband (by rung)"] <= final["Random"] + 0.01
    # By-rung accounting reports earlier than by-bracket accounting.
    rung_curve = curves["Hyperband (by rung)"]
    bracket_curve = curves["Hyperband (by bracket)"]
    first_rung = next(t for t, v in zip(rung_curve.grid, rung_curve.mean) if v < float("inf"))
    first_bracket = next(
        (t for t, v in zip(bracket_curve.grid, bracket_curve.mean) if v < float("inf")),
        float("inf"),
    )
    assert first_rung <= first_bracket
    # Hyperband (by rung) is competitive with Fabolas at the end.
    assert final["Hyperband (by rung)"] <= final["Fabolas"] + 0.03
