"""Section 3.3's horizon argument, measured: doubling-trick SHA vs ASHA.

"SHA does not naturally extend to the infinite horizon setting, as it
relies on the doubling trick and must rerun brackets with larger budgets...
Additionally, SHA does not return an output until a single bracket
completes.  In the finite horizon this means there is a constant interval
... between receiving outputs from SHA.  In the infinite horizon this
interval doubles between outputs.  In contrast, ASHA grows the bracket
incrementally."

This bench runs both on one worker over the same clock budget and reports
(a) the times at which each algorithm first produced a result at each depth
level and (b) the doubling of SHA's output intervals.
"""

from __future__ import annotations

import numpy as np
from _bench_utils import emit

from repro.analysis import render_table
from repro.backend import SimulatedCluster
from repro.core import ASHA, DoublingSHA
from repro.experiments.toys import toy_objective

ETA = 2
DEPTHS = [4.0, 8.0, 16.0, 32.0, 64.0]


def run_pair():
    budget = 3000.0
    objective = toy_objective(max_resource=1e12, constant=False)

    # --- ASHA, infinite horizon: depth grows continuously.
    rng = np.random.default_rng(0)
    asha = ASHA(objective.space, rng, min_resource=1.0, max_resource=None, eta=ETA)
    asha_result = SimulatedCluster(1, seed=0).run(asha, objective, time_limit=budget)
    asha_depth_times = {}
    for m in asha_result.measurements:
        asha_depth_times.setdefault(m.resource, m.time)

    # --- SHA with the doubling trick: outputs at bracket boundaries only.
    rng = np.random.default_rng(0)
    sha = DoublingSHA(
        objective.space, rng, min_resource=1.0, initial_max_resource=4.0, eta=ETA
    )
    sha_result = SimulatedCluster(1, seed=0).run(sha, objective, time_limit=budget)
    sha_output_times = {}
    for _, winner_id, big_r in sha.outputs:
        t = max(m.time for m in sha_result.measurements if m.trial_id == winner_id)
        sha_output_times[big_r] = t
    return asha_depth_times, sha_output_times


def test_ablation_horizon_latency(benchmark):
    asha_times, sha_times = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    rows = []
    for depth in DEPTHS:
        rows.append(
            [
                int(depth),
                round(asha_times.get(depth, float("inf")), 1),
                round(sha_times.get(depth, float("inf")), 1),
            ]
        )
    emit(
        "ablation_horizon",
        render_table(
            ["resource depth", "ASHA first result", "doubling-SHA output"],
            rows,
            title="Section 3.3: time to first result at each depth (1 worker, eta=2)",
        ),
    )
    # ASHA reaches every depth no later than the doubling-trick bracket that
    # first covers it (it never waits for a full bracket).
    for depth in DEPTHS:
        if depth in sha_times and depth in asha_times:
            assert asha_times[depth] <= sha_times[depth] + 1e-9
    # SHA's output intervals grow geometrically.
    outs = [sha_times[d] for d in sorted(sha_times)]
    gaps = np.diff([0.0] + outs)
    if len(gaps) >= 3:
        assert gaps[2] > 1.5 * gaps[1] > 1.5**2 * gaps[0] / 1.5
