"""Section 3.2's wall-clock claims, verified exactly on the simulator.

With 9 workers on Bracket 0 of the toy example, ASHA returns a fully
trained configuration in ``13/9 x time(R)`` when every rung trains from
scratch, and in exactly ``time(R)`` with checkpointed resume ("when training
is iterative, ASHA can return an answer in time(R)").  We also verify the
general bound: a configuration trained to completion arrives within
``2 x time(R)`` given enough workers.
"""

from __future__ import annotations

import numpy as np
import pytest
from _bench_utils import emit

from repro.analysis import render_table
from repro.backend import SimulatedCluster
from repro.core import ASHA
from repro.experiments.figures import claim_wallclock
from repro.experiments.toys import toy_objective


def test_claim_wallclock_toy_exact(benchmark):
    out = benchmark.pedantic(claim_wallclock, rounds=1, iterations=1)
    emit(
        "claim_wallclock",
        render_table(
            ["setting", "first completion", "in units of time(R)"],
            [
                ["from scratch", out["from_scratch"], out["from_scratch"] / out["time_R"]],
                ["checkpointed", out["checkpointed"], out["checkpointed"] / out["time_R"]],
            ],
            title="Section 3.2: ASHA time to first fully-trained configuration (9 workers)",
        ),
    )
    assert out["from_scratch"] == pytest.approx(13.0)  # 13/9 x time(R)
    assert out["checkpointed"] == pytest.approx(9.0)  # time(R)


def test_claim_two_time_r_bound(benchmark):
    """sum_{i} eta**(i - log_eta R) x time(R) <= 2 time(R) with enough workers."""

    def run():
        results = []
        for eta, s_max in ((2, 5), (3, 4), (4, 3)):
            big_r = float(eta**s_max)
            objective = toy_objective(max_resource=big_r, constant=True)
            rng = np.random.default_rng(0)
            asha = ASHA(
                objective.space,
                rng,
                min_resource=1.0,
                max_resource=big_r,
                eta=eta,
                from_checkpoint=False,
            )
            workers = eta**s_max  # eta**(log_eta R - s) machines
            cluster = SimulatedCluster(workers, seed=0)
            result = cluster.run(
                objective=objective,
                scheduler=asha,
                time_limit=3.0 * big_r,
                stop_on_first_completion=True,
            )
            results.append((eta, big_r, result.first_completion_time()))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "claim_two_time_r",
        render_table(
            ["eta", "R", "first completion", "bound 2R"],
            [[eta, r, t, 2 * r] for eta, r, t in results],
            title="Section 3.2: ASHA returns a fully trained config within 2 x time(R)",
        ),
    )
    for eta, big_r, t in results:
        assert t is not None
        assert t <= 2.0 * big_r + 1e-9
