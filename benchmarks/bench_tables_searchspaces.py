"""Tables 1-3: the paper's search-space definitions, regenerated from code.

The search spaces are code in this repository; this bench renders them back
into the papers' table format and asserts the exact hyperparameter sets,
types, and ranges.
"""

from __future__ import annotations

from _bench_utils import emit

from repro.analysis import render_table
from repro.objectives import cifar_smallcnn, ptb_awd_lstm, ptb_lstm
from repro.searchspace import Choice, IntUniform, LogUniform, Uniform


def describe(space):
    rows = []
    for name in space.names:
        dom = space[name]
        if isinstance(dom, Choice):
            rows.append([name, "choice", str(list(dom.values))])
        elif isinstance(dom, IntUniform):
            rows.append([name, "discrete", f"[{dom.low}, {dom.high}]"])
        elif isinstance(dom, LogUniform):
            rows.append([name, "continuous log", f"[{dom.low:g}, {dom.high:g}]"])
        elif isinstance(dom, Uniform):
            rows.append([name, "continuous", f"[{dom.low:g}, {dom.high:g}]"])
    return rows


def test_table1_small_cnn_space(benchmark):
    space = benchmark.pedantic(cifar_smallcnn.space, rounds=1, iterations=1)
    rows = describe(space)
    emit(
        "table1_searchspace",
        render_table(["hyperparameter", "type", "values"], rows, title="Table 1: small CNN"),
    )
    assert space.dim == 10
    assert isinstance(space["learning_rate"], LogUniform)
    assert space["learning_rate"].low == 1e-5 and space["learning_rate"].high == 10.0


def test_table2_ptb_lstm_space(benchmark):
    space = benchmark.pedantic(ptb_lstm.space, rounds=1, iterations=1)
    rows = describe(space)
    emit(
        "table2_searchspace",
        render_table(["hyperparameter", "type", "values"], rows, title="Table 2: PTB LSTM"),
    )
    assert space.dim == 9
    assert space["hidden_nodes"].low == 200 and space["hidden_nodes"].high == 1500
    assert space["batch_size"].low == 10 and space["batch_size"].high == 80
    assert isinstance(space["decay_rate"], Uniform)


def test_table3_awd_lstm_space(benchmark):
    space = benchmark.pedantic(ptb_awd_lstm.space, rounds=1, iterations=1)
    rows = describe(space)
    emit(
        "table3_searchspace",
        render_table(["hyperparameter", "type", "values"], rows, title="Table 3: AWD-LSTM"),
    )
    assert space.dim == 9
    assert space["learning_rate"].low == 10.0 and space["learning_rate"].high == 100.0
    assert space["batch_size"].values == (15, 20, 25)
    assert space["time_steps"].values == (65, 70, 75)
    assert space["weight_decay"].low == 0.5e-6 and space["weight_decay"].high == 2e-6
