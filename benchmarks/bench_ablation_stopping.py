"""Extension ablation: composable stopping rules vs ASHA's rung promotion.

The conclusion's future-work direction ("incorporating meta-learning to
inform early-stopping") motivates the standalone rules in
``repro.core.stopping``.  This bench compares, at equal budget:

* plain random search (no early stopping);
* random search + median stopping rule (Vizier's rule);
* random search + learning-curve-extrapolation stopping;
* ASHA (rung-based early stopping).

Expected: both rule-augmented random searches beat plain random (they stop
hopeless configurations), but neither matches ASHA — adaptive *resource
allocation* beats pure termination rules on this workload.  Reported with
bootstrap confidence intervals from ``repro.analysis.stats``.
"""

from __future__ import annotations

from _bench_utils import emit

from repro.analysis import render_table
from repro.analysis.stats import summarize
from repro.core import (
    ASHA,
    CurveExtrapolationRule,
    MedianStoppingRule,
    RandomSearch,
    StoppingWrapper,
)
from repro.experiments.figures import sequential_benchmarks
from repro.experiments.runner import run_trials

SPEC = sequential_benchmarks()["cifar_convnet"]
TIME_R = SPEC.settings.max_resource
TRIALS = 4


def periodic_random(objective, rng):
    """Random search that reports every R/8 so stopping rules can observe."""

    class PeriodicRandom(RandomSearch):
        def next_job(self):
            # Resume the lowest-resource unfinished trial, else sample fresh.
            for trial in self.trials.values():
                if trial.status.value == "paused" and trial.resource < TIME_R:
                    return self.make_job(trial, min(trial.resource + TIME_R / 8, TIME_R))
            job = super().next_job()
            if job is None:
                return None
            trial = self.trials[job.trial_id]
            return self.make_job(trial, TIME_R / 8)

        def report(self, job, loss):
            self.note_result(job, loss)
            trial = self.trials[job.trial_id]
            from repro.core import TrialStatus

            trial.status = (
                TrialStatus.COMPLETED if trial.resource >= TIME_R else TrialStatus.PAUSED
            )

    return PeriodicRandom(objective.space, rng, max_resource=TIME_R)


def variants():
    return {
        "Random": lambda obj, rng: periodic_random(obj, rng),
        "Random + median stop": lambda obj, rng: StoppingWrapper(
            periodic_random(obj, rng),
            MedianStoppingRule(grace_resource=TIME_R / 8, min_peers=5),
        ),
        "Random + curve stop": lambda obj, rng: StoppingWrapper(
            periodic_random(obj, rng),
            CurveExtrapolationRule(max_resource=TIME_R, min_points=3, margin=1.05),
        ),
        "ASHA": lambda obj, rng: ASHA(
            obj.space, rng, min_resource=TIME_R / 256, max_resource=TIME_R, eta=4
        ),
    }


def run_all():
    out = {}
    for name, factory in variants().items():
        out[name] = run_trials(
            name,
            factory,
            SPEC.make_objective,
            num_workers=25,
            time_limit=2.0 * TIME_R,
            seeds=range(TRIALS),
        )
    return out


def test_ablation_stopping_rules(benchmark):
    records = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for name, recs in records.items():
        s = summarize(recs, target=SPEC.good_loss, horizon=2.0 * TIME_R)
        rows.append(
            [
                name,
                round(s.final_mean, 4),
                f"[{s.final_ci[0]:.4f}, {s.final_ci[1]:.4f}]",
                round(s.time_to_target_mean, 0),
                s.censored_runs,
            ]
        )
    emit(
        "ablation_stopping",
        render_table(
            ["variant", "final mean", "95% CI", f"mean t to {SPEC.good_loss}", "censored"],
            rows,
            title="Stopping rules vs rung promotion (25 workers, 2 x time(R))",
        ),
    )
    finals = {name: summarize(recs).final_mean for name, recs in records.items()}
    assert finals["Random + median stop"] <= finals["Random"] + 0.005
    assert finals["ASHA"] <= finals["Random + median stop"] + 0.01
