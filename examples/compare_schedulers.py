"""Compare every tuning method on one benchmark — a miniature Figure 3/4.

Runs Random, SHA, Hyperband, PBT, ASHA, async Hyperband and BOHB on the
CIFAR-10 cuda-convnet surrogate with 25 simulated workers, and prints mean
incumbent error over time plus the time each method needs to reach a "good"
configuration.

Run:  python examples/compare_schedulers.py
"""

from __future__ import annotations

from repro.analysis import render_series, render_table
from repro.experiments.figures import sequential_benchmarks
from repro.experiments.methods import standard_methods
from repro.experiments.runner import aggregate_methods, run_trials

NUM_WORKERS = 25
NUM_TRIALS = 3
GOOD_ERROR = 0.21


def main() -> None:
    spec = sequential_benchmarks(grow_brackets=True)["cifar_convnet"]
    time_limit = 3.0 * spec.settings.max_resource  # 3 x time(R)

    records = {}
    for name, factory in standard_methods(spec.settings).items():
        print(f"running {name} ...")
        records[name] = run_trials(
            name,
            factory,
            spec.make_objective,
            num_workers=NUM_WORKERS,
            time_limit=time_limit,
            seeds=range(NUM_TRIALS),
            straggler_std=0.25,
        )
    curves = aggregate_methods(records, time_limit=time_limit, grid_points=24)

    grid = list(next(iter(curves.values())).grid)
    series = {name: list(curve.mean.round(4)) for name, curve in curves.items()}
    print()
    print(
        render_series(
            grid,
            series,
            time_label="sim time",
            title=f"{spec.name}: mean test error, {NUM_WORKERS} workers, {NUM_TRIALS} trials",
            max_points=8,
        )
    )
    print()
    rows = [
        [name, round(curve.final_mean, 4), curve.time_to_reach(GOOD_ERROR)]
        for name, curve in sorted(curves.items(), key=lambda kv: kv[1].final_mean)
    ]
    print(render_table(["method", "final error", f"time to {GOOD_ERROR}"], rows))


if __name__ == "__main__":
    main()
