"""Bring your own objective: plug a custom training process into ASHA.

Shows the full integration surface a downstream user touches:

1. define a :class:`~repro.searchspace.SearchSpace`;
2. implement the :class:`~repro.objectives.Objective` protocol —
   ``initial_state`` / ``train`` (resumable!) and optionally a cost model;
3. run any scheduler on any backend;
4. add a composable early-stopping rule on top (``StoppingWrapper``).

The toy problem: fit a noisy quadratic by gradient descent, tuning the step
size and momentum.  Resource = gradient steps.

Run:  python examples/custom_objective.py
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import ASHA, SimulatedCluster
from repro.core import MedianStoppingRule, StoppingWrapper
from repro.objectives import Objective
from repro.searchspace import LogUniform, SearchSpace, Uniform

TARGET = np.array([1.5, -2.0, 0.5])
MAX_STEPS = 256.0


@dataclass
class GDState:
    """Training state: current iterate and momentum buffer."""

    x: np.ndarray
    velocity: np.ndarray
    step: int


class QuadraticObjective(Objective):
    """Minimise ||x - target||^2 by momentum SGD with noisy gradients."""

    def __init__(self, noise: float = 0.3, seed: int = 0):
        self.space = SearchSpace(
            {
                "step_size": LogUniform(1e-4, 1.0),
                "momentum": Uniform(0.0, 0.99),
            }
        )
        self.max_resource = MAX_STEPS
        self.noise = noise
        self.seed = seed

    def initial_state(self, config) -> GDState:
        return GDState(x=np.zeros(3), velocity=np.zeros(3), step=0)

    def train(self, state: GDState, config, from_resource, to_resource):
        lr, mu = config["step_size"], config["momentum"]
        target_step = int(to_resource)
        # Deterministic per-segment noise keeps pause/resume reproducible:
        # the generator is re-seeded from the step the segment starts at.
        rng = np.random.default_rng((self.seed, state.step))
        while state.step < target_step:
            grad = 2.0 * (state.x - TARGET) + self.noise * rng.normal(size=3)
            state.velocity = mu * state.velocity - lr * grad
            state.x = state.x + state.velocity
            state.step += 1
        loss = float(np.sum((state.x - TARGET) ** 2))
        return state, loss


def main() -> None:
    objective = QuadraticObjective()
    inner = ASHA(
        objective.space,
        np.random.default_rng(0),
        min_resource=4,
        max_resource=MAX_STEPS,
        eta=4,
    )
    # Compose a median stopping rule on top of ASHA (extension feature).
    scheduler = StoppingWrapper(inner, MedianStoppingRule(grace_resource=4, min_peers=5))

    result = SimulatedCluster(num_workers=8).run(
        scheduler, objective, time_limit=30 * MAX_STEPS
    )
    best = scheduler.best_trial()
    print(f"configurations tried: {scheduler.num_trials}")
    print(f"stopped early by the median rule: {len(scheduler.stopped_early)}")
    print(f"best loss: {best.last_loss:.4f}")
    print(
        "best config: step_size={step_size:.4f}, momentum={momentum:.3f}".format(
            **best.config
        )
    )
    assert best.last_loss < 0.5, "tuning should solve this toy problem"


if __name__ == "__main__":
    main()
