"""Quickstart: tune a real numpy MLP with ASHA on the simulated cluster.

This is the 60-second tour: define nothing, reuse the bundled real
objective (a one-hidden-layer MLP trained by SGD on two spirals, resource =
epochs), run ASHA on 8 simulated workers, and inspect the result.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import ASHA, SimulatedCluster
from repro.analysis import render_table, trace_incumbent
from repro.objectives import mlp_real


def main() -> None:
    # 1. An objective: search space + resumable training process.
    objective = mlp_real.make_objective(max_epochs=64)

    # 2. A scheduler: ASHA with the paper's default aggressiveness.
    #    eta=4, r=1 epoch, R=64 epochs -> rungs at 1, 4, 16, 64 epochs.
    scheduler = ASHA(
        objective.space,
        np.random.default_rng(0),
        min_resource=1,
        max_resource=64,
        eta=4,
    )

    # 3. A backend: 8 simulated workers for 40 x time(R) of cluster time.
    cluster = SimulatedCluster(num_workers=8)
    result = cluster.run(scheduler, objective, time_limit=40 * 64)

    # 4. Results.
    best = scheduler.best_trial()
    print(f"jobs dispatched:        {result.jobs_dispatched}")
    print(f"configurations tried:   {scheduler.num_trials}")
    print(f"fully trained to R:     {len(result.completions)}")
    print(f"worker utilisation:     {result.utilization:.0%}")
    print(f"best validation error:  {best.last_loss:.3f}")
    print(f"best configuration:     {best.config}")

    trace = trace_incumbent(result, scheduler)
    rows = [[f"{t:.0f}", f"{v:.3f}"] for t, v in zip(trace.times[:10], trace.values[:10])]
    print()
    print(render_table(["sim time", "best error so far"], rows, title="Incumbent trace (head)"))


if __name__ == "__main__":
    main()
