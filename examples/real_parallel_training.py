"""Really-parallel tuning: ASHA driving live numpy training in threads.

Everything else in the examples uses the discrete-event simulator; this one
uses :class:`repro.backend.ThreadPoolBackend` so the MLPs genuinely train
concurrently in worker threads with checkpointed pause/resume — the
execution model Section 3.2 describes ("incrementally trained
configurations can be checkpointed and resumed").

Run:  python examples/real_parallel_training.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import ASHA, ThreadPoolBackend
from repro.analysis import render_table
from repro.core import TrialStatus
from repro.objectives import mlp_real

MAX_EPOCHS = 32
WORKERS = 4


def main() -> None:
    objective = mlp_real.make_objective(max_epochs=MAX_EPOCHS, num_train=384, num_val=256)
    scheduler = ASHA(
        objective.space,
        np.random.default_rng(1),
        min_resource=1,
        max_resource=MAX_EPOCHS,
        eta=4,
        max_trials=48,  # cap so the run drains and finishes on its own
    )
    backend = ThreadPoolBackend(num_workers=WORKERS)

    start = time.monotonic()
    result = backend.run(scheduler, objective, time_limit=120.0)
    elapsed = time.monotonic() - start

    statuses = {}
    for trial in scheduler.trials.values():
        statuses[trial.status] = statuses.get(trial.status, 0) + 1
    rungs = scheduler.rung_sizes()

    print(f"wall-clock: {elapsed:.1f}s on {WORKERS} threads, utilisation {result.utilization:.0%}")
    print(f"jobs run: {result.jobs_dispatched}, measurements: {len(result.measurements)}")
    print(f"rung occupancy (epochs 1/4/16/32): {rungs}")
    print(
        "statuses: "
        + ", ".join(f"{k.value}={v}" for k, v in sorted(statuses.items(), key=lambda kv: kv[0].value))
    )

    completed = [
        t for t in scheduler.trials.values() if t.status == TrialStatus.COMPLETED
    ]
    rows = [
        [
            t.trial_id,
            round(t.last_loss, 3),
            round(t.config["learning_rate"], 4),
            t.config["hidden_units"],
            f"{t.config['l2']:.1e}",
            t.config["batch_size"],
        ]
        for t in sorted(completed, key=lambda t: t.last_loss)
    ]
    print()
    print(
        render_table(
            ["trial", "val error", "lr", "hidden", "l2", "batch"],
            rows,
            title=f"Configurations trained to {MAX_EPOCHS} epochs",
        )
    )


if __name__ == "__main__":
    main()
