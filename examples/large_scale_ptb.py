"""The large-scale regime: 500 workers vs a model-based tuner (mini Figure 5).

Demonstrates the paper's headline scenario — evaluate orders of magnitude
more configurations than workers, in a small multiple of time(R) — on the
PTB LSTM surrogate with its heavy-tailed divergent region.  ASHA is compared
against the Vizier stand-in (batched GP-EI training every proposal to R).

Run:  python examples/large_scale_ptb.py
"""

from __future__ import annotations

import numpy as np

from repro import ASHA, SimulatedCluster, VizierGP
from repro.analysis import render_table, trace_incumbent
from repro.objectives import ptb_lstm

NUM_WORKERS = 500
HORIZON = 4.0  # multiples of time(R)


def run(name, make_scheduler):
    objective = ptb_lstm.make_objective()
    scheduler = make_scheduler(objective)
    cluster = SimulatedCluster(NUM_WORKERS, seed=0)
    result = cluster.run(scheduler, objective, time_limit=HORIZON * ptb_lstm.R)
    trace = trace_incumbent(result, scheduler)
    configs = len({m.trial_id for m in result.measurements})
    print(
        f"{name:8s} configs evaluated: {configs:6d}   "
        f"fully trained: {len(result.completions):4d}   "
        f"best perplexity: {trace.final:.1f}"
    )
    return trace


def main() -> None:
    print(f"{NUM_WORKERS} workers, budget = {HORIZON:.0f} x time(R)\n")
    traces = {}
    traces["ASHA"] = run(
        "ASHA",
        lambda obj: ASHA(
            obj.space,
            np.random.default_rng(0),
            min_resource=ptb_lstm.R / 64,
            max_resource=ptb_lstm.R,
            eta=4,
        ),
    )
    traces["Vizier"] = run(
        "Vizier",
        lambda obj: VizierGP(
            obj.space,
            np.random.default_rng(0),
            max_resource=ptb_lstm.R,
            loss_cap=1000.0,
            refit_every=25,
            max_fit_points=250,
        ),
    )

    print()
    checkpoints = [0.5, 1.0, 2.0, 4.0]
    rows = []
    for mult in checkpoints:
        t = mult * ptb_lstm.R
        rows.append(
            [f"{mult:.1f} x time(R)"]
            + [
                round(traces[m].value_at(t), 1) if np.isfinite(traces[m].value_at(t)) else "-"
                for m in ("ASHA", "Vizier")
            ]
        )
    print(render_table(["elapsed", "ASHA best ppl", "Vizier best ppl"], rows))
    print(
        "\nASHA exploits early stopping: it has a strong incumbent before "
        "Vizier finishes its first full training runs."
    )


if __name__ == "__main__":
    main()
