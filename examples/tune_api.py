"""The one-call API: `repro.tune` on a user-supplied training function.

Shows the smallest possible integration: write a training callable, pick a
scheduler by name, get the best configuration back.  Also demonstrates
switching schedulers and backends without touching the objective.

Run:  python examples/tune_api.py
"""

from __future__ import annotations

import math

from repro import tune
from repro.searchspace import LogUniform, SearchSpace, Uniform

SPACE = SearchSpace(
    {
        "lr": LogUniform(1e-4, 1.0),
        "momentum": Uniform(0.0, 0.99),
    }
)
R = 64.0


def train(config, state, from_resource, to_resource):
    """A synthetic 'training curve' with an lr sweet spot near 0.02.

    ``state`` carries the current loss so pause/resume is exact.
    """
    loss = state if state is not None else 2.0
    floor = (math.log10(config["lr"]) + 1.7) ** 2 * 0.2 + (config["momentum"] - 0.9) ** 2
    steps = int(to_resource - from_resource)
    for _ in range(steps):
        loss = floor + (loss - floor) * 0.93
    return loss, loss


def main() -> None:
    for scheduler in ("random", "asha", "bohb"):
        result = tune(
            train,
            SPACE,
            max_resource=R,
            scheduler=scheduler,
            num_workers=8,
            time_limit=60 * R,
            seed=0,
        )
        print(
            f"{scheduler:>6s}: best loss {result.best_loss:.4f}  "
            f"lr={result.best_config['lr']:.4f} momentum={result.best_config['momentum']:.2f}  "
            f"({result.num_trials} configs, "
            f"{len(result.backend_result.completions)} trained to R)"
        )
    print("\nSame budget, same objective: early stopping evaluates far more "
          "configurations than random search and lands closer to the optimum.")


if __name__ == "__main__":
    main()
